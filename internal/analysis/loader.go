package analysis

import (
	"fmt"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// modulePath is the import-path prefix of this module (go.mod `module`).
// The loader is deliberately go.mod-free; a wrong value only affects the
// Path field analyzers match package identity against.
const modulePath = "repro"

// Load walks the module rooted at root, parses every Go package directory
// into a Package, and type-checks each package with go/types so analyzers
// see resolved objects instead of raw identifiers. `testdata`, hidden, and
// vendor directories are skipped, matching the go tool's conventions.
func Load(root string) ([]*Package, error) {
	return LoadUnder(root, root)
}

// LoadUnder is Load restricted to the subtree at dir; package import paths
// are still computed relative to the module root so path-scoped analyzers
// (dimguard, lockhold, ctxflow) resolve identically to a full-module run,
// and imports of packages outside the subtree are loaded on demand for
// type checking.
func LoadUnder(root, dir string) ([]*Package, error) {
	var dirs []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking %s: %w", root, err)
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	chk := newChecker(root, fset)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := parseDir(root, dir, fset)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
			chk.byPath[pkg.Path] = pkg
		}
	}
	typecheckAll(chk, pkgs)
	return pkgs, nil
}

// LoadDir parses and type-checks the single directory dir (which must be
// root or inside it) as one Package, or returns nil when it contains no Go
// files.
func LoadDir(root, dir string) (*Package, error) {
	fset := token.NewFileSet()
	pkg, err := parseDir(root, dir, fset)
	if err != nil || pkg == nil {
		return pkg, err
	}
	chk := newChecker(root, fset)
	chk.byPath[pkg.Path] = pkg
	typecheckAll(chk, []*Package{pkg})
	return pkg, nil
}

// parseDir parses one directory's Go files into a Package (no type check).
// Files excluded by their build constraints for the host GOOS/GOARCH are
// skipped, exactly as `go build` would skip them — so a package that pairs
// kernel_amd64.go with kernel_noasm.go contributes one implementation, not
// two conflicting ones, to the type check.
func parseDir(root, dir string, fset *token.FileSet) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		rel = dir
	}
	pkg := &Package{
		Dir:  filepath.ToSlash(rel),
		Path: importPath(rel),
		Fset: fset,
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if !buildFileIncluded(name, src) {
			continue
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, File{
			AST:  f,
			Name: path,
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

func importPath(rel string) string {
	rel = filepath.ToSlash(rel)
	if rel == "." || rel == "" {
		return modulePath
	}
	return modulePath + "/" + rel
}

// buildFileIncluded reports whether the file participates in a build for
// the host GOOS/GOARCH, honoring both filename suffixes (_amd64.go,
// _linux_amd64.go) and //go:build constraint lines.
func buildFileIncluded(name string, src []byte) bool {
	if !matchOSArchSuffix(name) {
		return false
	}
	expr := buildConstraintOf(src)
	if expr == nil {
		return true
	}
	return expr.Eval(buildTagMatch)
}

// buildConstraintOf scans the line comments preceding the package clause
// for a //go:build constraint and parses it. Legacy // +build lines are
// ANDed in when no //go:build line is present.
func buildConstraintOf(src []byte) constraint.Expr {
	var plus constraint.Expr
	for _, line := range strings.Split(string(src), "\n") {
		t := strings.TrimSpace(line)
		if constraint.IsGoBuild(t) {
			if e, err := constraint.Parse(t); err == nil {
				return e
			}
		}
		if constraint.IsPlusBuild(t) {
			if e, err := constraint.Parse(t); err == nil {
				if plus == nil {
					plus = e
				} else {
					plus = &constraint.AndExpr{X: plus, Y: e}
				}
			}
		}
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		break // reached the package clause; constraints must precede it
	}
	return plus
}

// unixOS is the subset of GOOS values the "unix" build tag covers that this
// loader can plausibly run on.
var unixOS = map[string]bool{
	"linux": true, "darwin": true, "freebsd": true, "netbsd": true,
	"openbsd": true, "dragonfly": true, "solaris": true, "aix": true,
}

// buildTagMatch evaluates one build tag against the host platform.
func buildTagMatch(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH:
		return true
	case tag == "unix":
		return unixOS[runtime.GOOS]
	case tag == "gc":
		return true
	case strings.HasPrefix(tag, "go1"):
		// Release tags: the toolchain running this loader satisfies every
		// go1.x constraint the module (go 1.22) states.
		return true
	}
	return false
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// matchOSArchSuffix implements the go tool's implicit filename constraints:
// *_GOOS.go, *_GOARCH.go, *_GOOS_GOARCH.go.
func matchOSArchSuffix(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	base = strings.TrimSuffix(base, "_test")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] == runtime.GOOS
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}
