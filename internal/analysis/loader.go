package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// modulePath is the import-path prefix of this module (go.mod `module`).
// The loader is deliberately go.mod-free; a wrong value only affects the
// Path field analyzers match package identity against.
const modulePath = "repro"

// Load walks the module rooted at root and parses every Go package
// directory into a Package. `testdata`, hidden, and vendor directories are
// skipped, matching the go tool's conventions.
func Load(root string) ([]*Package, error) {
	return LoadUnder(root, root)
}

// LoadUnder is Load restricted to the subtree at dir; package import paths
// are still computed relative to the module root so path-scoped analyzers
// (dimguard) resolve identically to a full-module run.
func LoadUnder(root, dir string) ([]*Package, error) {
	var dirs []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking %s: %w", root, err)
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := LoadDir(root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses the single directory dir (which must be root or inside it)
// as one Package, or returns nil when it contains no Go files.
func LoadDir(root, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		rel = dir
	}
	pkg := &Package{
		Dir:  filepath.ToSlash(rel),
		Path: importPath(rel),
		Fset: token.NewFileSet(),
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(pkg.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, File{
			AST:  f,
			Name: path,
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

func importPath(rel string) string {
	rel = filepath.ToSlash(rel)
	if rel == "." || rel == "" {
		return modulePath
	}
	return modulePath + "/" + rel
}
