package analysis

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readGolden(t testing.TB, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden", name))
	if err != nil {
		t.Fatalf("reading golden %s: %v", name, err)
	}
	return data
}

// TestParseWitnessGolden pins the parser against a committed transcript in
// the go1.22–go1.25 diagnostic format: every fact kind must land in its
// table at the position the compiler printed.
func TestParseWitnessGolden(t *testing.T) {
	r := parseWitness("go1.24.0", readGolden(t, "witness_go1.24.txt"))
	if r.disabled {
		t.Fatalf("golden transcript disabled the report: %s", r.reason)
	}
	if !r.canInline["kernel/scan.go:12:6"] {
		t.Errorf("can-inline fact missing: %v", r.canInline)
	}
	if got := r.cannotInline["kernel/scan.go:20:6"]; got != "recursive" {
		t.Errorf("cannot-inline reason = %q, want %q", got, "recursive")
	}
	if got := r.cannotInline["kernel/scan.go:30:6"]; got != "function too complex: cost 87 exceeds budget 80" {
		t.Errorf("cannot-inline reason = %q, want the cost message", got)
	}
	if !r.inlinedCalls["kernel/scan.go:33:14"] {
		t.Errorf("inlined-call fact missing: %v", r.inlinedCalls)
	}
	if got := r.escapes["kernel/scan.go:11:7"]; got != "&node{...}" {
		t.Errorf("escape fact = %q, want %q", got, "&node{...}")
	}
	if got := r.moved["kernel/scan.go:22:2"]; got != "total" {
		t.Errorf("moved fact = %q, want %q", got, "total")
	}
	if got := r.boundsChecks["kernel/scan.go:50:11"]; got != "IsInBounds" {
		t.Errorf("bounds fact = %q, want IsInBounds", got)
	}
	if got := r.boundsChecks["kernel/scan.go:51:15"]; got != "IsSliceInBounds" {
		t.Errorf("bounds fact = %q, want IsSliceInBounds", got)
	}
	// Recognized no-ops must not invent facts.
	if len(r.escapes) != 2 { // &node{...} and the "total escapes to heap:" header
		t.Errorf("escapes table has %d entries, want 2: %v", len(r.escapes), r.escapes)
	}
	if len(r.boundsChecks) != 2 {
		t.Errorf("bounds table has %d entries, want 2: %v", len(r.boundsChecks), r.boundsChecks)
	}
}

// TestParseWitnessMalformed proves graceful degradation: a stream with no
// recognizable diagnostics (here: a usage error) disables the report
// instead of producing facts or failing the run.
func TestParseWitnessMalformed(t *testing.T) {
	resetWitness()
	defer resetWitness()
	r := parseWitness("go1.24.0", readGolden(t, "witness_malformed.txt"))
	if !r.disabled {
		t.Fatal("malformed stream did not disable the report")
	}
	if r.reason != "unrecognized compiler output" {
		t.Fatalf("reason = %q, want %q", r.reason, "unrecognized compiler output")
	}
	if n := WitnessNotice(); !strings.Contains(n, "disabled") {
		t.Fatalf("WitnessNotice() = %q, want it to report the rules disabled", n)
	}
}

// TestParseWitnessVersionSkew proves the parser refuses toolchains it has
// not been validated against, reporting the rules disabled with the
// version in the notice.
func TestParseWitnessVersionSkew(t *testing.T) {
	resetWitness()
	defer resetWitness()
	r := parseWitness("go1.99.0", readGolden(t, "witness_go1.24.txt"))
	if !r.disabled || r.reason != "untested toolchain" {
		t.Fatalf("version skew: disabled=%v reason=%q, want disabled with untested toolchain", r.disabled, r.reason)
	}
	n := WitnessNotice()
	if !strings.Contains(n, "disabled") || !strings.Contains(n, "go1.99.0") {
		t.Fatalf("WitnessNotice() = %q, want disabled notice naming go1.99.0", n)
	}
}

func TestWitnessVersionSupported(t *testing.T) {
	for _, v := range []string{"go1.22", "go1.22.4", "go1.23.1", "go1.24.0", "go1.25.1"} {
		if !witnessVersionSupported(v) {
			t.Errorf("version %s should be supported", v)
		}
	}
	for _, v := range []string{"go1.21.13", "go1.220", "go1.99.0", "devel +abc123", ""} {
		if witnessVersionSupported(v) {
			t.Errorf("version %q should not be supported", v)
		}
	}
}

// TestWitnessForBuildFailure injects a failing runner: the report degrades
// to disabled with the first error line as the reason, and the cache keeps
// the degraded report instead of retrying every rule.
func TestWitnessForBuildFailure(t *testing.T) {
	resetWitness()
	calls := 0
	old := witnessRunner
	witnessRunner = func(root string, dirs []string) (string, []byte, error) {
		calls++
		return "go1.24.0", nil, errors.New("exit status 1\ncompile: blah")
	}
	defer func() { witnessRunner = old; resetWitness() }()

	r := witnessFor("/nonexistent", []string{"a", "b"})
	if !r.disabled || !strings.Contains(r.reason, "witness build failed: exit status 1") {
		t.Fatalf("disabled=%v reason=%q, want a build-failure reason", r.disabled, r.reason)
	}
	if r2 := witnessFor("/nonexistent", []string{"b", "a"}); r2 != r || calls != 1 {
		t.Fatalf("cache miss on permuted dirs: calls=%d", calls)
	}
}

// TestWitnessRulesDegradeOnMalformedOutput runs the three gate rules over a
// fixture that WOULD produce findings, with the runner returning garbage:
// every rule must report nothing and the notice must say disabled.
func TestWitnessRulesDegradeOnMalformedOutput(t *testing.T) {
	resetWitness()
	old := witnessRunner
	witnessRunner = func(root string, dirs []string) (string, []byte, error) {
		return "go1.24.0", readGolden(t, "witness_malformed.txt"), nil
	}
	defer func() { witnessRunner = old; resetWitness() }()

	root := filepath.Join("testdata", "src")
	pkg, err := LoadDir(root, filepath.Join(root, "escapegate"))
	if err != nil || pkg == nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunPackages([]*Package{pkg}, []*Analyzer{EscapeGate, InlineGate, BceGate})
	if len(diags) != 0 {
		t.Fatalf("witness rules fired on a disabled report: %v", diags)
	}
	if n := WitnessNotice(); !strings.Contains(n, "disabled") {
		t.Fatalf("WitnessNotice() = %q, want a disabled notice", n)
	}
}

// TestWitnessRulesDegradeOnVersionSkew is the same degradation through the
// untested-toolchain path.
func TestWitnessRulesDegradeOnVersionSkew(t *testing.T) {
	resetWitness()
	old := witnessRunner
	witnessRunner = func(root string, dirs []string) (string, []byte, error) {
		return "go1.99.0", readGolden(t, "witness_go1.24.txt"), nil
	}
	defer func() { witnessRunner = old; resetWitness() }()

	root := filepath.Join("testdata", "src")
	pkg, err := LoadDir(root, filepath.Join(root, "escapegate"))
	if err != nil || pkg == nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := RunPackages([]*Package{pkg}, []*Analyzer{EscapeGate, InlineGate, BceGate})
	if len(diags) != 0 {
		t.Fatalf("witness rules fired on an untested toolchain: %v", diags)
	}
	if n := WitnessNotice(); !strings.Contains(n, "disabled") || !strings.Contains(n, "untested toolchain") {
		t.Fatalf("WitnessNotice() = %q, want an untested-toolchain disabled notice", n)
	}
}

func TestSplitDiagnostic(t *testing.T) {
	cases := []struct {
		in        string
		file      string
		line, col int
		msg       string
		ok        bool
	}{
		{"a/b.go:3:7: Found IsInBounds", "a/b.go", 3, 7, "Found IsInBounds", true},
		{"a/b.go:3:7:   flow: x", "a/b.go", 3, 7, "  flow: x", true},
		{"C:/x/y.go:12:1: moved to heap: v", "C:/x/y.go", 12, 1, "moved to heap: v", true},
		{"no diagnostic here", "", 0, 0, "", false},
		{"<autogenerated>:1: inlining call to f", "", 0, 0, "", false},
	}
	for _, c := range cases {
		file, line, col, msg, ok := splitDiagnostic(c.in)
		if ok != c.ok || file != c.file || line != c.line || col != c.col || msg != c.msg {
			t.Errorf("splitDiagnostic(%q) = (%q,%d,%d,%q,%v), want (%q,%d,%d,%q,%v)",
				c.in, file, line, col, msg, ok, c.file, c.line, c.col, c.msg, c.ok)
		}
	}
}

// FuzzWitnessParser hammers the diagnostic parser with mutated transcripts,
// seeded from the committed golden. The parser must never panic, must keep
// every fact key in file:line:col form, and must set a reason whenever it
// disables the report.
func FuzzWitnessParser(f *testing.F) {
	golden := readGolden(f, "witness_go1.24.txt")
	f.Add(string(golden))
	for _, line := range strings.Split(string(golden), "\n") {
		f.Add(line)
	}
	f.Add("x.go:1:2: Found IsInBounds")
	f.Add("x.go:3:4: cannot inline f: recursive")
	f.Add("x.go:5:6: moved to heap: v\nx.go:5:7: y escapes to heap")
	f.Add("x.go:1:2: \r\n# pkg\n::::")
	f.Fuzz(func(t *testing.T, out string) {
		r := parseWitness("go1.24.0", []byte(out))
		if r.disabled && r.reason == "" {
			t.Fatal("disabled report without a reason")
		}
		for _, m := range []map[string]string{r.escapes, r.moved, r.cannotInline, r.boundsChecks} {
			for key := range m {
				if _, _, _, ok := splitWitnessKey(key); !ok {
					t.Fatalf("malformed fact key %q", key)
				}
			}
		}
		for _, m := range []map[string]bool{r.inlinedCalls, r.canInline} {
			for key := range m {
				if _, _, _, ok := splitWitnessKey(key); !ok {
					t.Fatalf("malformed fact key %q", key)
				}
			}
		}
	})
}
