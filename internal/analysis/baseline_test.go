package analysis

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func baselineDiags() []Diagnostic {
	return []Diagnostic{
		{Pos: token.Position{Filename: "internal/serve/engine.go", Line: 10, Column: 2}, Rule: "lockhold", Message: "channel send while holding mu; release the lock before blocking"},
		{Pos: token.Position{Filename: "internal/serve/engine.go", Line: 50, Column: 4}, Rule: "ctxflow", Message: "context.Background() outside main/tests discards the caller's deadline and cancellation; accept and propagate a context.Context instead"},
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := NewBaseline("", baselineDiags())
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != b.Len() {
		t.Fatalf("round trip changed Len: wrote %d, read %d", b.Len(), got.Len())
	}
	if out := got.Filter("", baselineDiags()); len(out) != 0 {
		t.Fatalf("reloaded baseline does not absorb its own findings: %v", out)
	}
}

// TestBaselineFilterCounts: baseline keys are (file, rule, message) with a
// count, not line numbers — moving a finding is absorbed, duplicating it is
// not.
func TestBaselineFilterCounts(t *testing.T) {
	diags := baselineDiags()
	b := NewBaseline("", diags)

	// Same findings on different lines: absorbed.
	moved := baselineDiags()
	moved[0].Pos.Line = 99
	if out := b.Filter("", moved); len(out) != 0 {
		t.Fatalf("line move not absorbed: %v", out)
	}

	// A second occurrence of a recorded (file, rule, message) key is new.
	dup := append(baselineDiags(), baselineDiags()[0])
	out := b.Filter("", dup)
	if len(out) != 1 || out[0].Rule != "lockhold" {
		t.Fatalf("want the duplicated finding flagged as new, got %v", out)
	}

	// A different message is new.
	fresh := baselineDiags()
	fresh[1].Message = "something else"
	out = b.Filter("", fresh)
	if len(out) != 1 || out[0].Rule != "ctxflow" {
		t.Fatalf("want the changed finding flagged as new, got %v", out)
	}
}

func TestGateNilBaselinePassesThrough(t *testing.T) {
	res := RunResult{Diags: baselineDiags()}
	out := Gate("", res, nil)
	if len(out) != len(res.Diags) {
		t.Fatalf("nil baseline changed the findings: %v", out)
	}
}

func TestBaselineVersionCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"version": 2, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("unsupported baseline version accepted")
	}
}

// TestShippedBaselineIsEmpty keeps the committed baseline honest: the tree
// lints clean, so the shipped file must record zero accepted findings.
func TestShippedBaselineIsEmpty(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(filepath.Join(root, ".drlint-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("shipped baseline records %d finding(s); fix them instead", b.Len())
	}
}
