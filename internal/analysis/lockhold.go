package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHold forbids blocking operations while a sync.Mutex or sync.RWMutex
// is held in the serving layer. The engine's liveness argument depends on
// its critical sections being short and non-blocking: admission (Search)
// holds closeMu only around a non-blocking queue reservation, and Close
// releases it before joining the worker pools. A channel send or receive, a
// select without a default, a WaitGroup/Cond Wait, time.Sleep, file or
// network I/O, or a call into a same-package function that does any of
// these while a lock is held can deadlock the engine outright (Close
// waiting on workers that need the lock) or stall every other request on a
// critical section that now waits on the scheduler.
//
// The analysis is per-function and flow-aware in straight lines and
// branches: after an if/select/switch, a mutex counts as held only if every
// surviving branch still holds it. Deferred unlocks keep the lock held to
// the end of the function, which is the point: a `defer mu.Unlock()`
// followed by a channel receive is exactly the bug this rule exists for.
var LockHold = &Analyzer{
	Name:       "lockhold",
	Family:     "type-aware",
	Doc:        "no blocking operations (channel ops, Wait, Sleep, I/O, or calls that block) while a sync.Mutex/RWMutex is held in internal/serve",
	NeedsTypes: true,
	Run:        runLockHold,
}

// lockHoldPackages are the import-path suffixes the rule applies to.
var lockHoldPackages = []string{"internal/serve"}

func runLockHold(pass *Pass) {
	applies := false
	for _, suffix := range lockHoldPackages {
		if strings.HasSuffix(pass.Pkg.Path, suffix) {
			applies = true
		}
	}
	if !applies {
		return
	}
	w := &lockWalker{
		pass:     pass,
		info:     pass.Pkg.TypesInfo,
		blocking: map[*types.Func]bool{},
	}

	files := pass.SourceFiles()

	// Fixpoint pre-pass: which same-package functions block? A function
	// blocks if its body contains a direct blocking operation or a call to
	// a function already known to block.
	var decls []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.AST.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				decls = append(decls, fn)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range decls {
			obj, _ := w.info.Defs[fn.Name].(*types.Func)
			if obj == nil || w.blocking[obj] {
				continue
			}
			if w.funcBlocks(fn) {
				w.blocking[obj] = true
				changed = true
			}
		}
	}

	// Reporting pass: walk each function with an empty held set and report
	// every blocking operation reached while a mutex is held.
	for _, fn := range decls {
		w.report = func(pos token.Pos, what string, held map[*types.Var]bool) {
			pass.Reportf(pos, "%s while holding %s; release the lock before blocking",
				what, heldNames(held))
		}
		w.walkStmts(fn.Body.List, map[*types.Var]bool{})
	}
}

// heldNames renders the held mutex set for a message, sorted for
// deterministic output.
func heldNames(held map[*types.Var]bool) string {
	var names []string
	for v := range held {
		names = append(names, v.Name())
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// lockWalker tracks the set of held mutexes through a function body.
type lockWalker struct {
	pass     *Pass
	info     *types.Info
	blocking map[*types.Func]bool
	report   func(pos token.Pos, what string, held map[*types.Var]bool)
}

// funcBlocks reports whether fn's body contains a blocking operation on any
// path, by walking it with a sentinel lock permanently held and counting
// reports.
func (w *lockWalker) funcBlocks(fn *ast.FuncDecl) bool {
	blocks := false
	saved := w.report
	w.report = func(token.Pos, string, map[*types.Var]bool) { blocks = true }
	sentinel := types.NewVar(token.NoPos, nil, "<caller>", types.Typ[types.Invalid])
	w.walkStmts(fn.Body.List, map[*types.Var]bool{sentinel: true})
	w.report = saved
	return blocks
}

func copyHeld(held map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// meetHeld intersects the non-terminated branch outcomes: a mutex is held
// after a branch point only if every surviving path holds it. nil inputs
// mark terminated paths (return/break); if all paths terminate, nil.
func meetHeld(outs ...map[*types.Var]bool) map[*types.Var]bool {
	var live []map[*types.Var]bool
	for _, o := range outs {
		if o != nil {
			live = append(live, o)
		}
	}
	if len(live) == 0 {
		return nil
	}
	out := copyHeld(live[0])
	for v := range out {
		for _, o := range live[1:] {
			if !o[v] {
				delete(out, v)
				break
			}
		}
	}
	return out
}

// walkStmts threads held through a statement list; nil return means the
// list terminates control flow (return/branch).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[*types.Var]bool) map[*types.Var]bool {
	for _, s := range stmts {
		held = w.walkStmt(s, held)
		if held == nil {
			return nil
		}
	}
	return held
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[*types.Var]bool) map[*types.Var]bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if v, acquire, ok := w.mutexOp(call); ok {
				held = copyHeld(held)
				if acquire {
					held[v] = true
				} else {
					delete(held, v)
				}
				return held
			}
		}
		w.checkExpr(x.X, held)
		return held
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(x.Arrow, "channel send", held)
		}
		w.checkExpr(x.Chan, held)
		w.checkExpr(x.Value, held)
		return held
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range x.Lhs {
			w.checkExpr(e, held)
		}
		return held
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e, held)
					}
				}
			}
		}
		return held
	case *ast.IncDecStmt:
		w.checkExpr(x.X, held)
		return held
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.checkExpr(e, held)
		}
		return nil
	case *ast.BranchStmt:
		return nil
	case *ast.DeferStmt:
		// A deferred unlock keeps the mutex held through the rest of the
		// function; a deferred anything-else runs outside this flow.
		w.checkExprs(x.Call.Args, held)
		return held
	case *ast.GoStmt:
		// The spawned body runs elsewhere; only argument evaluation happens
		// under the lock.
		w.checkExprs(x.Call.Args, held)
		return held
	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, held)
	case *ast.BlockStmt:
		return w.walkStmts(x.List, copyHeld(held))
	case *ast.IfStmt:
		if x.Init != nil {
			held = w.walkStmt(x.Init, held)
			if held == nil {
				return nil
			}
		}
		w.checkExpr(x.Cond, held)
		thenOut := w.walkStmts(x.Body.List, copyHeld(held))
		elseOut := copyHeld(held)
		if x.Else != nil {
			elseOut = w.walkStmt(x.Else, copyHeld(held))
		}
		return meetHeld(thenOut, elseOut)
	case *ast.ForStmt:
		if x.Init != nil {
			held = w.walkStmt(x.Init, held)
			if held == nil {
				return nil
			}
		}
		w.checkExpr(x.Cond, held)
		bodyOut := w.walkStmts(x.Body.List, copyHeld(held))
		// The loop may run zero times, so the pre-loop state survives.
		return meetHeld(held, bodyOut)
	case *ast.RangeStmt:
		if len(held) > 0 && isChanType(w.info.TypeOf(x.X)) {
			w.report(x.For, "range over channel", held)
		}
		w.checkExpr(x.X, held)
		bodyOut := w.walkStmts(x.Body.List, copyHeld(held))
		return meetHeld(held, bodyOut)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			w.report(x.Select, "select without a default case", held)
		}
		var outs []map[*types.Var]bool
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// The comm operation itself is non-blocking when a default
			// exists, and already reported at the select level otherwise.
			outs = append(outs, w.walkStmts(cc.Body, copyHeld(held)))
		}
		if len(outs) == 0 {
			return held
		}
		return meetHeld(outs...)
	case *ast.SwitchStmt:
		if x.Init != nil {
			held = w.walkStmt(x.Init, held)
			if held == nil {
				return nil
			}
		}
		w.checkExpr(x.Tag, held)
		return w.walkClauses(x.Body.List, held)
	case *ast.TypeSwitchStmt:
		return w.walkClauses(x.Body.List, held)
	}
	return held
}

// walkClauses handles switch bodies: the post-state is the meet of every
// surviving clause plus the input (no default means all clauses may be
// skipped).
func (w *lockWalker) walkClauses(clauses []ast.Stmt, held map[*types.Var]bool) map[*types.Var]bool {
	hasDefault := false
	outs := []map[*types.Var]bool{}
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.checkExpr(e, held)
		}
		outs = append(outs, w.walkStmts(cc.Body, copyHeld(held)))
	}
	if !hasDefault {
		outs = append(outs, held)
	}
	if len(outs) == 0 {
		return held
	}
	return meetHeld(outs...)
}

func (w *lockWalker) checkExprs(es []ast.Expr, held map[*types.Var]bool) {
	for _, e := range es {
		w.checkExpr(e, held)
	}
}

// checkExpr reports blocking operations inside an expression evaluated
// while held is non-empty. Function literals are skipped: their bodies run
// when called, not here.
func (w *lockWalker) checkExpr(e ast.Expr, held map[*types.Var]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.report(x.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			if what := w.blockingCall(x); what != "" {
				w.report(x.Pos(), what, held)
			}
		}
		return true
	})
}

// mutexOp recognizes calls to (*sync.Mutex)/(*sync.RWMutex) Lock/RLock/
// Unlock/RUnlock and resolves the mutex to a variable or field object so
// the same lock is tracked across selector spellings.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (v *types.Var, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return nil, false, false
	}
	fn, isFn := w.info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		v, _ = w.info.Uses[x].(*types.Var)
	case *ast.SelectorExpr:
		if v = fieldObject(w.info, x); v == nil {
			v, _ = w.info.Uses[x.Sel].(*types.Var)
		}
	}
	if v == nil {
		return nil, false, false
	}
	return v, acquire, true
}

// blockingCall classifies a call as a blocking operation, returning a
// description or "".
func (w *lockWalker) blockingCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Same-package plain function call.
		if id, isID := call.Fun.(*ast.Ident); isID {
			if fn, isFn := w.info.Uses[id].(*types.Func); isFn && w.blocking[fn] {
				return "call to blocking function " + fn.Name()
			}
		}
		return ""
	}
	if _, _, isMutex := w.mutexOp(call); isMutex {
		return ""
	}
	fn, ok := w.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if fn.Name() == "Wait" {
			return "sync Wait"
		}
	case "os":
		switch fn.Name() {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile",
			"Remove", "RemoveAll", "Mkdir", "MkdirAll", "ReadDir":
			return "os file I/O (" + fn.Name() + ")"
		}
	case "net":
		switch fn.Name() {
		case "Dial", "DialTimeout", "Listen", "ListenPacket":
			return "net I/O (" + fn.Name() + ")"
		}
	}
	if w.blocking[fn] {
		return "call to blocking function " + fn.Name()
	}
	return ""
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
