package analysis

import (
	"go/ast"
	"go/token"
)

// FloatCmp forbids == and != between floating-point expressions in non-test
// code. The coherence probabilities, recall curves, and eigenvalue rankings
// this repo reproduces are all computed in floating point; an exact
// equality on such values silently encodes an assumption about rounding
// that the AVX2/FMA kernels (which round differently from the portable
// kernels in the last ulps) do not honor. Comparisons against the exact
// literal 0 are allowed: zero is exactly representable and `x == 0` is the
// idiomatic degenerate-case guard (division guards, zero-vector checks),
// not an approximate-equality bug. Anything else — variable against
// variable, nonzero literals — must go through a tolerance helper
// (linalg.VecEqual, math.Abs(a-b) <= tol) or carry a justified
// //drlint:ignore directive (e.g. a deterministic tie-break on values
// copied from the same computation).
//
// The analyzer is deliberately stdlib-syntactic: it types expressions by
// local inference (float literals, parameters and variables of float type,
// indexing into []float64, fields and same-package functions declared
// float) and only reports when an operand is confidently floating-point.
var FloatCmp = &Analyzer{
	Name:   "floatcmp",
	Family: "syntactic",
	Doc:    "no ==/!= between floating-point expressions outside tests (exact-zero guards excepted)",
	Run:    runFloatCmp,
}

// mathFloatFuncs are math.* functions returning float64 that appear in
// numeric guard positions.
var mathFloatFuncs = map[string]bool{
	"Abs": true, "Sqrt": true, "Pow": true, "Exp": true, "Log": true,
	"Log2": true, "Log10": true, "Floor": true, "Ceil": true, "Round": true,
	"Trunc": true, "Mod": true, "Hypot": true, "Inf": true, "NaN": true,
	"Min": true, "Max": true, "Cos": true, "Sin": true, "Tan": true,
	"Acos": true, "Asin": true, "Atan": true, "Atan2": true, "Gamma": true,
	"Erf": true, "Erfc": true, "Cbrt": true, "Copysign": true,
}

// pkgFloatInfo is package-level float knowledge shared by every function:
// which declared functions/methods return a single float, which struct
// fields are float, and which are float slices.
type pkgFloatInfo struct {
	floatFuncs  map[string]bool // name -> returns exactly one float64/float32
	floatFields map[string]bool // struct field name -> float
	vecFields   map[string]bool // struct field name -> []float64
}

func isFloatIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && (id.Name == "float64" || id.Name == "float32")
}

func isFloatSliceType(e ast.Expr) bool {
	arr, ok := e.(*ast.ArrayType)
	return ok && arr.Len == nil && isFloatIdent(arr.Elt)
}

func collectPkgFloatInfo(files []File) *pkgFloatInfo {
	info := &pkgFloatInfo{
		floatFuncs:  map[string]bool{},
		floatFields: map[string]bool{},
		vecFields:   map[string]bool{},
	}
	for _, f := range files {
		for _, decl := range f.AST.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				res := d.Type.Results
				if res != nil && len(res.List) == 1 && len(res.List[0].Names) <= 1 && isFloatIdent(res.List[0].Type) {
					info.floatFuncs[d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							if isFloatIdent(field.Type) {
								info.floatFields[name.Name] = true
							}
							if isFloatSliceType(field.Type) {
								info.vecFields[name.Name] = true
							}
						}
					}
				}
			}
		}
	}
	return info
}

// floatEnv is the per-function inference state.
type floatEnv struct {
	pkg       *pkgFloatInfo
	floatVars map[string]bool // identifier -> float scalar
	vecVars   map[string]bool // identifier -> []float64
}

func runFloatCmp(pass *Pass) {
	files := pass.SourceFiles()
	info := collectPkgFloatInfo(files)
	for _, f := range files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			env := &floatEnv{pkg: info, floatVars: map[string]bool{}, vecVars: map[string]bool{}}
			env.seedFromSignature(fn)
			env.inferLocals(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				cmp, ok := n.(*ast.BinaryExpr)
				if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
					return true
				}
				if !env.isFloat(cmp.X) && !env.isFloat(cmp.Y) {
					return true
				}
				if isZeroLiteral(cmp.X) || isZeroLiteral(cmp.Y) {
					return true
				}
				pass.Reportf(cmp.OpPos,
					"floating-point %s comparison; use a tolerance (or suppress with a justified //drlint:ignore if exactness is intended)",
					cmp.Op)
				return true
			})
		}
	}
}

func (env *floatEnv) seedFromSignature(fn *ast.FuncDecl) {
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if isFloatIdent(field.Type) {
					env.floatVars[name.Name] = true
				}
				if isFloatSliceType(field.Type) {
					env.vecVars[name.Name] = true
				}
			}
		}
	}
	seed(fn.Recv)
	seed(fn.Type.Params)
	seed(fn.Type.Results) // named results
}

// inferLocals walks the whole function body once, recording every
// declaration or assignment that pins an identifier to a float or []float64
// type. Scoping is flattened: a name that is float anywhere in the function
// is treated as float everywhere, which is the right bias for a lint that
// hand-verifies its findings.
func (env *floatEnv) inferLocals(body ast.Node) {
	// Iterate to a fixpoint so chains like `c := dot / n; d := c` resolve
	// regardless of inspection order.
	for changed := true; changed; {
		changed = false
		mark := func(m map[string]bool, name string) {
			if name != "_" && !m[name] {
				m[name] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				if len(node.Lhs) != len(node.Rhs) {
					return true
				}
				for i, lhs := range node.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if env.isFloat(node.Rhs[i]) {
						mark(env.floatVars, id.Name)
					}
					if env.isFloatSlice(node.Rhs[i]) {
						mark(env.vecVars, id.Name)
					}
				}
			case *ast.GenDecl:
				for _, spec := range node.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if isFloatIdent(vs.Type) || (vs.Type == nil && i < len(vs.Values) && env.isFloat(vs.Values[i])) {
							mark(env.floatVars, name.Name)
						}
						if isFloatSliceType(vs.Type) || (vs.Type == nil && i < len(vs.Values) && env.isFloatSlice(vs.Values[i])) {
							mark(env.vecVars, name.Name)
						}
					}
				}
			case *ast.RangeStmt:
				if node.Value != nil && env.isFloatSlice(node.X) {
					if id, ok := node.Value.(*ast.Ident); ok {
						mark(env.floatVars, id.Name)
					}
				}
			}
			return true
		})
	}
}

// isFloat reports whether e is confidently a floating-point scalar.
func (env *floatEnv) isFloat(e ast.Expr) bool {
	switch node := e.(type) {
	case *ast.BasicLit:
		return node.Kind == token.FLOAT
	case *ast.Ident:
		return env.floatVars[node.Name]
	case *ast.ParenExpr:
		return env.isFloat(node.X)
	case *ast.UnaryExpr:
		return (node.Op == token.SUB || node.Op == token.ADD) && env.isFloat(node.X)
	case *ast.BinaryExpr:
		switch node.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return env.isFloat(node.X) || env.isFloat(node.Y)
		}
		return false
	case *ast.IndexExpr:
		return env.isFloatSlice(node.X)
	case *ast.SelectorExpr:
		// Qualified math constants and struct float fields.
		if id, ok := node.X.(*ast.Ident); ok && id.Obj == nil && id.Name == "math" {
			switch node.Sel.Name {
			case "Pi", "E", "Sqrt2", "SqrtE", "SqrtPi", "Ln2", "Log2E", "Ln10", "Log10E",
				"MaxFloat64", "SmallestNonzeroFloat64", "MaxFloat32", "SmallestNonzeroFloat32", "Phi":
				return true
			}
			return false
		}
		return env.pkg.floatFields[node.Sel.Name]
	case *ast.CallExpr:
		switch fun := node.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "float64" || fun.Name == "float32" {
				return true
			}
			return env.pkg.floatFuncs[fun.Name]
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok && id.Obj == nil && id.Name == "math" {
				return mathFloatFuncs[fun.Sel.Name]
			}
			// Same-package method or a selector call on a local value whose
			// method is declared in this package.
			return env.pkg.floatFuncs[fun.Sel.Name]
		}
		return false
	}
	return false
}

// isFloatSlice reports whether e is confidently a []float64.
func (env *floatEnv) isFloatSlice(e ast.Expr) bool {
	switch node := e.(type) {
	case *ast.Ident:
		return env.vecVars[node.Name]
	case *ast.ParenExpr:
		return env.isFloatSlice(node.X)
	case *ast.SelectorExpr:
		return env.pkg.vecFields[node.Sel.Name]
	case *ast.SliceExpr:
		return env.isFloatSlice(node.X)
	case *ast.CallExpr:
		if id, ok := node.Fun.(*ast.Ident); ok {
			if id.Name == "make" && len(node.Args) >= 1 && isFloatSliceType(node.Args[0]) {
				return true
			}
			if id.Name == "append" && len(node.Args) >= 1 {
				return env.isFloatSlice(node.Args[0])
			}
		}
		// Conversions and calls returning []float64 by declaration are not
		// tracked package-wide; RawRow/Row are the common cases.
		if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "RawRow", "Row", "Col":
				return true
			}
		}
		return false
	case *ast.CompositeLit:
		return isFloatSliceType(node.Type)
	}
	return false
}

// isZeroLiteral matches the exact constants 0 and 0.0 (optionally signed).
func isZeroLiteral(e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = u.X
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok {
		return false
	}
	switch lit.Kind {
	case token.INT:
		return lit.Value == "0"
	case token.FLOAT:
		for _, c := range lit.Value {
			switch c {
			case '0', '.':
			case 'e', 'E', '+', '-', '_':
				// exponent/sign/separators cannot make a zero mantissa nonzero
			default:
				return false
			}
		}
		return true
	}
	return false
}
