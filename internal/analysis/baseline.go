package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Baseline is a recorded set of accepted findings: future runs only fail on
// findings not in it, so a new rule can land before every historical
// violation is fixed. Entries are keyed by (file, rule, message) — not line
// numbers, which shift on every edit — with a count per key so adding a
// second identical violation in the same file is still caught.
type Baseline struct {
	counts map[string]int
}

// baselineEntry is one record of the on-disk format.
type baselineEntry struct {
	File    string `json:"file"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

func baselineKey(f Finding) string {
	return f.File + "\x00" + f.Rule + "\x00" + f.Message
}

// NewBaseline records the given findings (paths relativized against root).
func NewBaseline(root string, diags []Diagnostic) *Baseline {
	b := &Baseline{counts: map[string]int{}}
	for _, f := range ToFindings(root, diags) {
		b.counts[baselineKey(f)]++
	}
	return b
}

// LoadBaseline reads a baseline file written by Write.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	if bf.Version != 1 {
		return nil, fmt.Errorf("analysis: baseline %s has unsupported version %d", path, bf.Version)
	}
	b := &Baseline{counts: map[string]int{}}
	for _, e := range bf.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		b.counts[baselineKey(Finding{File: e.File, Rule: e.Rule, Message: e.Message})] += n
	}
	return b, nil
}

// Len returns the number of accepted findings (counting multiplicity).
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}

// Write emits the baseline in its stable on-disk form (sorted entries).
func (b *Baseline) Write(w io.Writer) error {
	type keyed struct {
		entry baselineEntry
		key   string
	}
	var entries []keyed
	for k, c := range b.counts {
		var e baselineEntry
		e.Count = c
		parts := splitBaselineKey(k)
		e.File, e.Rule, e.Message = parts[0], parts[1], parts[2]
		entries = append(entries, keyed{entry: e, key: k})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	bf := baselineFile{Version: 1, Findings: make([]baselineEntry, 0, len(entries))}
	for _, e := range entries {
		bf.Findings = append(bf.Findings, e.entry)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(bf)
}

func splitBaselineKey(k string) [3]string {
	var out [3]string
	idx := 0
	start := 0
	for i := 0; i < len(k) && idx < 2; i++ {
		if k[i] == 0 {
			out[idx] = k[start:i]
			idx++
			start = i + 1
		}
	}
	out[2] = k[start:]
	return out
}

// Filter returns the findings not absorbed by the baseline: for each
// (file, rule, message) key, occurrences beyond the baseline count are new.
func (b *Baseline) Filter(root string, diags []Diagnostic) []Diagnostic {
	seen := map[string]int{}
	var out []Diagnostic
	for _, d := range diags {
		f := ToFindings(root, []Diagnostic{d})[0]
		k := baselineKey(f)
		seen[k]++
		if seen[k] > b.counts[k] {
			out = append(out, d)
		}
	}
	return out
}

// Contains reports whether the baseline has at least one entry for the
// diagnostic's key.
func (b *Baseline) Contains(root string, d Diagnostic) bool {
	f := ToFindings(root, []Diagnostic{d})[0]
	return b.counts[baselineKey(f)] > 0
}

// Gate applies the baseline to a run's result and returns the findings
// that should fail the build:
//
//   - active findings not absorbed by the baseline, and
//   - redundant-directive reports: a finding that is both in the baseline
//     and suppressed by a //drlint:ignore directive is absorbed by the
//     baseline (baseline wins), and the now-pointless directive is itself
//     flagged so suppressions do not accrete.
//
// With a nil baseline the active findings pass through unchanged.
func Gate(root string, res RunResult, b *Baseline) []Diagnostic {
	if b == nil {
		return res.Diags
	}
	out := b.Filter(root, res.Diags)
	for _, s := range res.Suppressed {
		if b.Contains(root, s.Diag) {
			out = append(out, Diagnostic{
				Pos:  s.DirectivePos,
				Rule: "drlint",
				Message: fmt.Sprintf("redundant //drlint:ignore: the suppressed %s finding is already in the baseline (baseline wins; drop the directive or the baseline entry)",
					s.Diag.Rule),
			})
		}
	}
	return sortDiagnostics(out)
}
