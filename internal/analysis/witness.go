package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file is the compiler-witness layer behind the escapegate, inlinegate
// and bcegate rules. Instead of re-deriving escape analysis, inlining
// decisions, or bounds-check elimination in go/ast — which would drift from
// the real optimizer — it shells out to the compiler itself:
//
//	go build -gcflags='-m=2 -d=ssa/check_bce/debug=1' <hot packages>
//
// and parses the diagnostic stream into a position-keyed fact table. The
// build cache replays diagnostics verbatim on cache hits, so repeated lint
// runs cost one cached no-op build, not a recompile.
//
// The diagnostic stream is an unstable compiler interface, so the layer is
// deliberately paranoid: it only trusts toolchains whose go version it has
// been validated against, it counts how many lines it recognized, and on an
// unknown toolchain, a failed build, or an unrecognizable stream it marks
// the whole report disabled with a reason instead of producing facts. The
// witness rules then report nothing — degraded, never wrong — and
// cmd/drlint surfaces the reason via WitnessNotice.

// witnessFlags is the exact gcflags string the witness build passes to the
// compiler: -m=2 prints escape analysis and inlining decisions, and the
// check_bce debug key prints every bounds check the SSA backend retained.
const witnessFlags = "-m=2 -d=ssa/check_bce/debug=1"

// witnessVersions are the go toolchain release prefixes this parser has
// been validated against. Anything else — older releases, future releases,
// devel builds — disables the witness rules rather than risking false
// positives against a diagnostic format that may have changed.
var witnessVersions = []string{"go1.22", "go1.23", "go1.24", "go1.25"}

// witnessReport is the parsed fact table of one witness build, keyed by
// "slash/relative/path.go:line:col" positions as the compiler prints them
// (relative to the module root the build ran in).
type witnessReport struct {
	goVersion string
	disabled  bool
	reason    string

	// escapes: positions of "X escapes to heap" facts, keyed to the
	// allocating expression. The message is the compiler's own phrasing.
	escapes map[string]string
	// moved: positions of "moved to heap: x" facts, keyed to the variable
	// declaration; the value is the variable name.
	moved map[string]string
	// inlinedCalls: call sites (keyed at the call's left parenthesis) the
	// compiler inlined ("inlining call to F").
	inlinedCalls map[string]bool
	// cannotInline: function declarations (keyed at the function name) the
	// compiler refused to inline, mapped to its reason.
	cannotInline map[string]string
	// canInline: function declarations the compiler marked inlinable.
	canInline map[string]bool
	// boundsChecks: positions where the SSA backend retained a bounds
	// check, mapped to the check kind (IsInBounds / IsSliceInBounds).
	boundsChecks map[string]string
}

func newWitnessReport(version string) *witnessReport {
	return &witnessReport{
		goVersion:    version,
		escapes:      map[string]string{},
		moved:        map[string]string{},
		inlinedCalls: map[string]bool{},
		cannotInline: map[string]string{},
		canInline:    map[string]bool{},
		boundsChecks: map[string]string{},
	}
}

func (r *witnessReport) disable(reason string) {
	r.disabled = true
	r.reason = reason
	recordWitnessNotice(reason, r.goVersion)
}

// witnessKey renders a token.Position as the compiler would print it:
// module-root-relative with forward slashes.
func witnessKey(root string, pos token.Position) string {
	name := pos.Filename
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d", filepath.ToSlash(name), pos.Line, pos.Column)
}

// witnessRunner produces the toolchain version and the raw diagnostic
// stream for the packages under root. Swapped by tests to replay golden
// transcripts, inject malformed output, or fake a version skew.
var witnessRunner = runWitnessBuild

// runWitnessBuild executes the witness build for the given package dirs
// (module-root-relative, e.g. "internal/knn") and returns the combined
// compiler output. Build failures are reported through the error; the
// caller degrades to a disabled report rather than failing the lint run.
func runWitnessBuild(root string, dirs []string) (string, []byte, error) {
	vcmd := exec.Command("go", "env", "GOVERSION")
	vcmd.Dir = root
	vout, err := vcmd.Output()
	if err != nil {
		return "", nil, fmt.Errorf("go env GOVERSION: %w", err)
	}
	version := strings.TrimSpace(string(vout))

	args := []string{"build", "-gcflags=" + witnessFlags}
	for _, d := range dirs {
		args = append(args, "./"+filepath.ToSlash(d))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return version, out, fmt.Errorf("go build -gcflags=%s: %w", witnessFlags, err)
	}
	return version, out, nil
}

// witnessCache holds one parsed report per (root, package set): the three
// witness rules run in the same process over the same hot closure, so the
// second and third rule reuse the first one's build.
var witnessCache = struct {
	sync.Mutex
	reports map[string]*witnessReport
}{reports: map[string]*witnessReport{}}

// witnessNotice records the most recent disable reason so cmd/drlint can
// tell the user the witness rules degraded (they never fail the run).
var witnessNotice = struct {
	sync.Mutex
	msg string
}{}

func recordWitnessNotice(reason, version string) {
	witnessNotice.Lock()
	defer witnessNotice.Unlock()
	if version != "" {
		witnessNotice.msg = fmt.Sprintf("compiler-witness rules disabled: %s (%s)", reason, version)
	} else {
		witnessNotice.msg = fmt.Sprintf("compiler-witness rules disabled: %s", reason)
	}
}

// WitnessNotice returns a human-readable note when the last witness build
// left the compiler-witness rules disabled, and "" when they ran. The CLI
// prints it to stderr so a degraded run is visible without failing CI.
func WitnessNotice() string {
	witnessNotice.Lock()
	defer witnessNotice.Unlock()
	return witnessNotice.msg
}

// resetWitness clears the cache and notice; tests use it to run the same
// module against different injected runners.
func resetWitness() {
	witnessCache.Lock()
	witnessCache.reports = map[string]*witnessReport{}
	witnessCache.Unlock()
	witnessNotice.Lock()
	witnessNotice.msg = ""
	witnessNotice.Unlock()
}

// witnessFor returns the (cached) witness report for the given package
// dirs under root. It never fails: every error path yields a disabled
// report with the reason recorded.
func witnessFor(root string, dirs []string) *witnessReport {
	sorted := append([]string(nil), dirs...)
	sort.Strings(sorted)
	key := root + "\x00" + strings.Join(sorted, "\x00")

	witnessCache.Lock()
	defer witnessCache.Unlock()
	if r, ok := witnessCache.reports[key]; ok {
		return r
	}
	version, out, err := witnessRunner(root, sorted)
	var r *witnessReport
	if err != nil {
		r = newWitnessReport(version)
		r.disable("witness build failed: " + firstLine(err.Error()))
	} else {
		r = parseWitness(version, out)
	}
	witnessCache.reports[key] = r
	return r
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// witnessVersionSupported reports whether the toolchain release is one the
// parser has been validated against.
func witnessVersionSupported(version string) bool {
	for _, p := range witnessVersions {
		if version == p || strings.HasPrefix(version, p+".") {
			return true
		}
	}
	return false
}

// parseWitness classifies every line of the compiler diagnostic stream
// into the fact tables. Unknown toolchains and streams with no
// recognizable diagnostics disable the report instead of guessing.
func parseWitness(version string, out []byte) *witnessReport {
	r := newWitnessReport(version)
	if !witnessVersionSupported(version) {
		r.disable("untested toolchain")
		return r
	}
	recognized := 0
	for _, line := range strings.Split(string(out), "\n") {
		if parseWitnessLine(r, line) {
			recognized++
		}
	}
	if recognized == 0 {
		r.disable("unrecognized compiler output")
	}
	return r
}

// parseWitnessLine parses one diagnostic line into r, reporting whether
// the line was recognized. Unrecognized lines are ignored individually;
// only a stream with zero recognized lines disables the report.
func parseWitnessLine(r *witnessReport, line string) bool {
	line = strings.TrimSuffix(line, "\r")
	if line == "" {
		return false
	}
	if strings.HasPrefix(line, "# ") {
		return true // package header
	}
	file, lineNo, col, msg, ok := splitDiagnostic(line)
	if !ok {
		return false
	}
	if strings.HasPrefix(file, "<") || filepath.IsAbs(file) {
		// Autogenerated wrappers and stdlib positions carry no source
		// position in this module; recognized but unusable.
		return true
	}
	key := fmt.Sprintf("%s:%d:%d", strings.TrimPrefix(filepath.ToSlash(file), "./"), lineNo, col)
	switch {
	case strings.HasPrefix(msg, " "):
		return true // escape-flow continuation ("  flow: ...", "    from ...")
	case strings.HasPrefix(msg, "inlining call to "):
		r.inlinedCalls[key] = true
	case strings.HasPrefix(msg, "can inline "):
		r.canInline[key] = true
	case strings.HasPrefix(msg, "cannot inline "):
		reason := strings.TrimPrefix(msg, "cannot inline ")
		if i := strings.Index(reason, ": "); i >= 0 {
			reason = reason[i+2:]
		}
		r.cannotInline[key] = reason
	case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
		r.boundsChecks[key] = strings.TrimPrefix(msg, "Found ")
	case strings.HasPrefix(msg, "moved to heap: "):
		r.moved[key] = strings.TrimPrefix(msg, "moved to heap: ")
	case strings.HasSuffix(msg, " escapes to heap") || strings.HasSuffix(msg, " escapes to heap:"):
		r.escapes[key] = strings.TrimSuffix(strings.TrimSuffix(msg, ":"), " escapes to heap")
	case strings.Contains(msg, "does not escape"),
		strings.HasPrefix(msg, "leaking param"),
		strings.HasPrefix(msg, "parameter "),
		strings.Contains(msg, "ignoring self-assignment"),
		strings.HasPrefix(msg, "mark inlined call"),
		strings.HasPrefix(msg, "escapes to heap"):
		// Recognized no-ops: parameter leak annotations and non-escape
		// confirmations carry no gate-relevant fact.
	default:
		return false
	}
	return true
}

// witnessContext joins the //drlint:hotpath call-graph closure with the
// witness report for the packages that closure touches. It is the shared
// entry point of the three compiler-witness rules; when it returns nil the
// rule has nothing to do (no annotations, no module root, or a disabled
// witness build).
type witnessContext struct {
	graph  *callGraph
	hot    map[*types.Func]string
	root   string
	report *witnessReport
}

func newWitnessContext(pass *ModulePass) *witnessContext {
	g := buildCallGraph(pass)
	var roots []*types.Func
	for _, fi := range g.funcs {
		if hasHotpathDirective(fi.decl) {
			roots = append(roots, fi.obj)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	hot := g.reach(roots)
	root := moduleRootOf(pass)
	if root == "" {
		return nil
	}
	dirSet := map[string]bool{}
	for _, fi := range g.funcs {
		if _, ok := hot[fi.obj]; ok {
			dirSet[fi.pkg.Dir] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	report := witnessFor(root, dirs)
	if report.disabled {
		return nil
	}
	return &witnessContext{graph: g, hot: hot, root: root, report: report}
}

// moduleRootOf recovers the directory the packages were loaded from by
// stripping a package's root-relative Dir from one of its file paths.
func moduleRootOf(pass *ModulePass) string {
	for _, pkg := range pass.Pkgs {
		if len(pkg.Files) == 0 {
			continue
		}
		dir := filepath.Dir(pkg.Files[0].Name)
		if pkg.Dir == "." || pkg.Dir == "" {
			return dir
		}
		suffix := filepath.FromSlash(pkg.Dir)
		if dir == suffix {
			return "."
		}
		if strings.HasSuffix(dir, string(filepath.Separator)+suffix) {
			return strings.TrimSuffix(dir, string(filepath.Separator)+suffix)
		}
	}
	return ""
}

// hotWhere renders the hot-path attribution for gate messages, matching
// hotalloc's phrasing.
func hotWhere(fi *funcInfo, root string) string {
	name := qualifiedName(fi.obj)
	if name == root {
		return "hot path " + name
	}
	return "hot path (reached from " + root + ")"
}

// splitDiagnostic splits "file:line:col: message" without a regexp; the
// message keeps its leading spaces so continuation lines stay detectable.
func splitDiagnostic(s string) (file string, line, col int, msg string, ok bool) {
	// Scan for ":<digits>:<digits>: " left to right so Windows drive
	// letters or colons in file names cannot confuse the split.
	for i := 0; i < len(s); i++ {
		if s[i] != ':' {
			continue
		}
		j := i + 1
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == i+1 || j >= len(s) || s[j] != ':' {
			continue
		}
		k := j + 1
		for k < len(s) && s[k] >= '0' && s[k] <= '9' {
			k++
		}
		if k == j+1 || k+1 >= len(s) || s[k] != ':' || s[k+1] != ' ' {
			continue
		}
		ln, cn := 0, 0
		for _, c := range s[i+1 : j] {
			ln = ln*10 + int(c-'0')
		}
		for _, c := range s[j+1 : k] {
			cn = cn*10 + int(c-'0')
		}
		return s[:i], ln, cn, s[k+2:], true
	}
	return "", 0, 0, "", false
}
