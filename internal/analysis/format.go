package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Finding is the machine-readable form of a Diagnostic, with the file path
// made module-relative (forward slashes) so output is stable across
// machines and checkouts.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// jsonReport is the document `drlint -format json` emits.
type jsonReport struct {
	Version  int       `json:"version"`
	Count    int       `json:"count"`
	Findings []Finding `json:"findings"`
}

// relPath makes filename module-relative with forward slashes; paths
// outside root pass through unchanged.
func relPath(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// ToFindings converts diagnostics to their machine-readable form, with
// paths relative to root.
func ToFindings(root string, diags []Diagnostic) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, Finding{
			File:    relPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	return out
}

// WriteText prints diagnostics in the classic file:line:col form.
func WriteText(w io.Writer, root string, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n",
			relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the findings as a JSON document.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	rep := jsonReport{Version: 1, Count: len(diags), Findings: ToFindings(root, diags)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Minimal SARIF 2.1.0 document structure — enough for GitHub code scanning
// upload (github/codeql-action/upload-sarif) to annotate PRs inline.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF emits the findings as a SARIF 2.1.0 document. The rule table
// covers every analyzer passed in plus the reserved "typecheck" and
// "drlint" (directive hygiene) rules, so result ruleIds always resolve.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, diags []Diagnostic) error {
	driver := sarifDriver{
		Name:           "drlint",
		InformationURI: "https://github.com/paper-repro/drlint",
	}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	driver.Rules = append(driver.Rules,
		sarifRule{ID: "typecheck", ShortDescription: sarifMessage{Text: "the package must type-check with go/types"}},
		sarifRule{ID: "drlint", ShortDescription: sarifMessage{Text: "//drlint:ignore directives must be well-formed, justified, and not redundant"}},
	)
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		line, col := d.Pos.Line, d.Pos.Column
		if line < 1 {
			line = 1
		}
		if col < 1 {
			col = 1
		}
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: line, StartColumn: col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
