package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc enforces allocation-free hot paths. A function annotated with a
// //drlint:hotpath doc-comment line — and every module function it
// transitively calls through statically resolvable edges — must not
// allocate: composite/slice/map literals, make/new/append, closures that
// capture variables, defer, interface boxing at call sites, string/[]byte
// conversions, calls into non-allowlisted external packages, and calls to
// module functions that return fresh memory are all flagged.
//
// Recognized-clean idioms (the amortized-to-zero patterns this module uses):
// pool-miss refills guarded by `if v == nil` on a (*sync.Pool).Get result,
// growth guarded by a cap()/len() comparison, allocations whose value is the
// function's own result (flows into a return or channel send), appends into
// a buffer pre-sized under a cap guard earlier in the function, and panic
// arguments (the crash path is off the hot path by definition).
//
// Known gap: calls through interfaces or function values are not followed —
// the static call graph only records direct calls, so dynamic callees must
// carry their own annotation to be checked.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //drlint:hotpath (and their transitive module callees) " +
		"must not allocate; pool-backed scratch, cap-guarded growth, and result " +
		"materialization are recognized as clean",
	Family:          "dataflow",
	NeedsAnnotation: true,
	NeedsTypes:      true,
	RunModule:       runHotAlloc,
}

// hotPkgAllowlist are external packages whose functions are trusted not to
// allocate on the paths this module calls (synchronization, math, runtime
// introspection, in-place slice algorithms).
var hotPkgAllowlist = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
	"runtime":     true,
	"time":        true,
	"slices":      true,
	"sort":        false, // sort.Slice takes a closure; use slices.SortFunc
	"unsafe":      true,
	"syscall":     true,
}

// hotFuncAllowlist admits individual external functions from packages that
// are not blanket-trusted.
var hotFuncAllowlist = map[string]bool{
	"os.Getpagesize": true,
}

func runHotAlloc(pass *ModulePass) {
	g := buildCallGraph(pass)
	var roots []*types.Func
	for _, fi := range g.funcs {
		if hasHotpathDirective(fi.decl) {
			roots = append(roots, fi.obj)
		}
	}
	if len(roots) == 0 {
		return
	}
	hot := g.reach(roots)
	facts := computeFuncFacts(g)
	for _, fi := range g.funcs {
		root, ok := hot[fi.obj]
		if !ok || fi.decl.Body == nil {
			continue
		}
		(&hotChecker{
			pass:  pass,
			graph: g,
			facts: facts,
			fi:    fi,
			root:  root,
		}).check()
	}
}

type hotChecker struct {
	pass  *ModulePass
	graph *callGraph
	facts map[*types.Func]*funcFacts
	fi    *funcInfo
	root  string

	ex       *allocExempt
	presized map[string]bool
}

func (c *hotChecker) check() {
	info := c.fi.pkg.TypesInfo
	body := c.fi.decl.Body
	c.ex = newAllocExempt(info, body)
	c.presized = preSizedExprs(body)

	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		c.checkNode(n, stack)
		return true
	})
}

// where renders the hot-path attribution for messages: the annotated root
// that makes this function hot.
func (c *hotChecker) where() string {
	name := qualifiedName(c.fi.obj)
	if name == c.root {
		return "hot path " + name
	}
	return "hot path (reached from " + c.root + ")"
}

func (c *hotChecker) checkNode(n ast.Node, stack []ast.Node) {
	info := c.fi.pkg.TypesInfo
	switch n := n.(type) {
	case *ast.CompositeLit:
		heap := false
		if len(stack) >= 2 {
			if u, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && u.Op.String() == "&" {
				heap = true
			}
		}
		isRef := false
		switch t := n.Type.(type) {
		case *ast.ArrayType:
			isRef = t.Len == nil // slice literal; [N]T is a value
		case *ast.MapType:
			isRef = true
		}
		if !heap && !isRef {
			return // value struct/array composite: no allocation
		}
		if c.exempted(stack) {
			return
		}
		c.pass.Reportf(c.fi.pkg, n.Pos(), "%s: composite literal allocates each call; hoist it or reuse a buffer", c.where())
	case *ast.CallExpr:
		c.checkCall(n, stack)
	case *ast.FuncLit:
		caps := closureCaptures(info, n)
		if len(caps) == 0 || c.exempted(stack) {
			return
		}
		c.pass.Reportf(c.fi.pkg, n.Pos(), "%s: closure capture of %s allocates at each creation; hoist to a method or pass parameters explicitly", c.where(), strings.Join(caps, ", "))
	case *ast.DeferStmt:
		if c.exempted(stack) {
			return
		}
		c.pass.Reportf(c.fi.pkg, n.Pos(), "%s: defer allocates a deferred frame; call directly on each exit path", c.where())
	}
}

func (c *hotChecker) checkCall(call *ast.CallExpr, stack []ast.Node) {
	info := c.fi.pkg.TypesInfo

	// Builtins: make/new always allocate; append may grow.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				if !c.exempted(stack) {
					c.pass.Reportf(c.fi.pkg, call.Pos(), "%s: %s allocates each call; pool it or pre-size behind a cap guard", c.where(), id.Name)
				}
			case "append":
				if !c.appendPreSized(call, stack) && !c.exempted(stack) {
					c.pass.Reportf(c.fi.pkg, call.Pos(), "%s: append may grow its backing array; pre-size behind a cap/len guard", c.where())
				}
			}
			return
		}
	}

	// Conversions: string <-> []byte/[]rune copy and allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if allocatingConversion(tv.Type, info.Types[call.Args[0]].Type) {
			if !c.exempted(stack) {
				c.pass.Reportf(c.fi.pkg, call.Pos(), "%s: string/[]byte conversion copies and allocates; keep one representation", c.where())
			}
		}
		return
	}

	callee := calleeOf(info, call)
	if callee == nil {
		// Dynamic call (interface method, func value): not followed — the
		// documented gap. The callee must carry its own annotation.
		return
	}
	if c.graph.byObj[callee] != nil {
		if f := c.facts[callee]; f != nil && f.returnsFresh && !c.exempted(stack) {
			c.pass.Reportf(c.fi.pkg, call.Pos(), "%s: %s returns freshly allocated memory each call; pool or reuse the result", c.where(), qualifiedName(callee))
		}
	} else if pkg := callee.Pkg(); pkg != nil && !strings.HasPrefix(pkg.Path(), modulePath) {
		if !hotPkgAllowlist[pkg.Path()] && !hotFuncAllowlist[callee.FullName()] && !c.exempted(stack) {
			c.pass.Reportf(c.fi.pkg, call.Pos(), "%s: call into %s may allocate; move it off the hot path or extend the allowlist", c.where(), callee.FullName())
		}
	}
	c.checkBoxing(call, callee, stack)
}

// checkBoxing flags arguments whose concrete, non-pointer-shaped value is
// passed to an interface parameter — an allocation when the value escapes.
func (c *hotChecker) checkBoxing(call *ast.CallExpr, callee *types.Func, stack []ast.Node) {
	info := c.fi.pkg.TypesInfo
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			sl, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		// A type parameter's underlying is an interface, but generic
		// calls instantiate: the argument is passed as its concrete
		// type, never boxed.
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.IsNil() || tv.Type == nil || types.IsInterface(tv.Type) {
			continue
		}
		switch tv.Type.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: stored in the interface word directly
		}
		if c.exempted(stack) {
			continue
		}
		c.pass.Reportf(c.fi.pkg, arg.Pos(), "%s: %s argument boxes into interface parameter and may allocate; use a concrete type", c.where(), types.TypeString(tv.Type, nil))
	}
}

// appendPreSized reports whether this append writes back into an expression
// that was re-made under a cap/len guard earlier in the function — growth is
// amortized to zero, so the append is clean.
func (c *hotChecker) appendPreSized(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	for i := len(stack) - 2; i >= 0; i-- {
		as, ok := stack[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		if len(as.Lhs) != 1 {
			return false
		}
		l := types.ExprString(as.Lhs[0])
		return c.presized[l] && types.ExprString(call.Args[0]) == l
	}
	return false
}

// exempted delegates to the shared allocExempt walk (see dataflow.go),
// which escapegate reuses so the two rules agree on what counts as an
// amortized-to-zero idiom.
func (c *hotChecker) exempted(stack []ast.Node) bool {
	return c.ex.exempted(stack)
}

// closureCaptures returns the names of function-local variables a closure
// references from its enclosing function. A capture-free FuncLit compiles to
// a static function value and does not allocate.
func closureCaptures(info *types.Info, lit *ast.FuncLit) []string {
	var names []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the closure
		}
		if scope := v.Parent(); scope != nil && scope.Parent() == types.Universe {
			return true // package-level variable, not a capture
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}

// allocatingConversion reports whether a conversion from 'from' to 'to'
// copies its data: string <-> []byte / []rune in either direction.
func allocatingConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
