package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// BceGate verifies that the asm-adjacent scan and kernel code — the
// quantized sweep in internal/store and the kernel dispatchers in
// internal/linalg — runs without bounds checks the SSA backend had to
// retain. These loops are sized to run at memory bandwidth; a retained
// IsInBounds/IsSliceInBounds in them is a per-row branch the hand-written
// assembly next door does not pay. The rule joins the
// -d=ssa/check_bce/debug=1 witness against the //drlint:hotpath closure,
// restricted to those two packages (elsewhere a bounds check is the cost
// of safety, not a kernel regression).
//
// Only checks inside for/range loop bodies gate: setup indexing before the
// loop runs once per call and is the price of a safe slice header, not a
// per-row tax. Facts the compiler attributes to a module call site (the
// inlined copy of a callee's check) are skipped: the callee is judged at
// its own declaration. Checks inside panic arguments are cold and exempt.
// Remaining checks either get restructured indexing (slice re-slicing like
// `c = c[:n]` that teaches the prover the loop bound) or a justified
// //drlint:ignore explaining why the check is irreducible and amortized.
var BceGate = &Analyzer{
	Name: "bcegate",
	Doc: "loops in internal/linalg and internal/store's scanBlock family that are " +
		"in a //drlint:hotpath closure must keep zero compiler-retained bounds checks",
	Family:          "compiler-witness",
	NeedsAnnotation: true,
	NeedsTypes:      true,
	RunModule:       runBceGate,
}

// bceScope returns whether fi is asm-adjacent kernel code: anything in
// internal/linalg, and internal/store's scanBlock family plus the per-row
// leaf helpers its loops call. Drivers like scanParallel or SearchBatch
// run per segment or per query — their indexing is the caller contract,
// not a kernel regression.
func bceScope(fi *funcInfo) bool {
	switch fi.pkg.Path {
	case modulePath + "/internal/linalg":
		return true
	case modulePath + "/internal/store":
		name := fi.decl.Name.Name
		switch name {
		case "combine", "prefixLB", "rowDotQ", "scoreAt":
			return true
		}
		return strings.HasPrefix(name, "scanBlock")
	}
	return false
}

func runBceGate(pass *ModulePass) {
	wc := newWitnessContext(pass)
	if wc == nil {
		return
	}
	for _, fi := range wc.graph.funcs {
		root, ok := wc.hot[fi.obj]
		if !ok || fi.decl.Body == nil || !bceScope(fi) {
			continue
		}
		checkBounds(pass, wc, fi, root)
	}
}

func checkBounds(pass *ModulePass, wc *witnessContext, fi *funcInfo, root string) {
	fset := fi.pkg.Fset
	tf := fset.File(fi.decl.Pos())
	if tf == nil {
		return
	}
	start := fset.Position(fi.decl.Pos())
	end := fset.Position(fi.decl.End())
	fname := witnessFileOf(witnessKey(wc.root, start))

	// Call sites whose inlined-callee facts must not be double-reported.
	callSites := map[string]bool{}
	info := fi.pkg.TypesInfo
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := calleeOf(info, call); callee != nil && wc.graph.byObj[callee] != nil {
				callSites[witnessKey(wc.root, fset.Position(call.Lparen))] = true
			}
		}
		return true
	})

	for key, kind := range wc.report.boundsChecks {
		file, line, col, ok := splitWitnessKey(key)
		if !ok || file != fname || line < start.Line || line > end.Line {
			continue
		}
		if callSites[key] {
			continue
		}
		if line > tf.LineCount() {
			continue
		}
		pos := tf.LineStart(line) + token.Pos(col-1)
		if pos < fi.decl.Pos() || pos >= fi.decl.End() {
			continue
		}
		if bceColdPath(info, fi.decl, pos) || !bceInLoop(fi.decl, pos) {
			continue
		}
		pass.Reportf(fi.pkg, pos, "%s: compiler retained a bounds check (%s) in an asm-adjacent kernel; restructure the indexing for BCE or justify with //drlint:ignore bcegate",
			hotWhere(fi, root), kind)
	}
}

// bceColdPath reports whether pos sits inside a panic argument — the one
// context where a retained check costs nothing because the path is already
// crashing.
func bceColdPath(info *types.Info, decl *ast.FuncDecl, pos token.Pos) bool {
	cold := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false // prune subtrees that cannot contain pos
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					cold = true
				}
			}
		}
		return true
	})
	return cold
}

// bceInLoop reports whether pos sits inside the body of a for or range
// statement — the only place a retained check is a per-row cost.
func bceInLoop(decl *ast.FuncDecl, pos token.Pos) bool {
	inLoop := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if pos >= n.Body.Pos() && pos < n.Body.End() {
				inLoop = true
			}
		case *ast.RangeStmt:
			if pos >= n.Body.Pos() && pos < n.Body.End() {
				inLoop = true
			}
		}
		return true
	})
	return inLoop
}

// witnessFileOf strips the ":line:col" suffix from a witness key.
func witnessFileOf(key string) string {
	s := key
	for i := 0; i < 2; i++ {
		j := strings.LastIndexByte(s, ':')
		if j < 0 {
			return key
		}
		s = s[:j]
	}
	return s
}

// splitWitnessKey parses "file:line:col" back into its parts.
func splitWitnessKey(key string) (file string, line, col int, ok bool) {
	j := strings.LastIndexByte(key, ':')
	if j < 0 {
		return "", 0, 0, false
	}
	c, err := strconv.Atoi(key[j+1:])
	if err != nil {
		return "", 0, 0, false
	}
	s := key[:j]
	j = strings.LastIndexByte(s, ':')
	if j < 0 {
		return "", 0, 0, false
	}
	l, err := strconv.Atoi(s[j+1:])
	if err != nil {
		return "", 0, 0, false
	}
	return s[:j], l, c, true
}
