package analysis

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestKernelBuildConstraints pins the loader's build-constraint handling to
// the one case that matters for type-checking this module: internal/linalg
// pairs kernel_amd64.go (//go:build amd64) with kernel_noasm.go
// (//go:build !amd64), and exactly one of them — the right one for the host
// GOARCH — may survive parsing, or the type check sees two conflicting
// implementations of the same functions.
func TestKernelBuildConstraints(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(root, filepath.Join(root, "internal", "linalg"))
	if err != nil || pkg == nil {
		t.Fatalf("loading internal/linalg: %v", err)
	}
	want := "kernel_noasm.go"
	if runtime.GOARCH == "amd64" {
		want = "kernel_amd64.go"
	}
	var kernels []string
	for _, f := range pkg.Files {
		base := filepath.Base(f.Name)
		if base == "kernel_amd64.go" || base == "kernel_noasm.go" {
			kernels = append(kernels, base)
		}
	}
	if len(kernels) != 1 || kernels[0] != want {
		t.Fatalf("GOARCH=%s: want exactly [%s] to survive build constraints, got %v",
			runtime.GOARCH, want, kernels)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("internal/linalg does not type-check: %v", pkg.TypeErrors)
	}
}

func TestBuildFileIncluded(t *testing.T) {
	amd := runtime.GOARCH == "amd64"
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"plain.go", "package p\n", true},
		{"kernel_amd64.go", "//go:build amd64\n\npackage p\n", amd},
		{"kernel_noasm.go", "//go:build !amd64\n\npackage p\n", !amd},
		// Filename suffix alone constrains, even without a //go:build line.
		{"x_" + runtime.GOARCH + ".go", "package p\n", true},
		{"x_wasm.go", "package p\n", runtime.GOARCH == "wasm"},
		{"x_windows.go", "package p\n", runtime.GOOS == "windows"},
		{"x_" + runtime.GOOS + "_" + runtime.GOARCH + ".go", "package p\n", true},
		// A //go:build line on an unconstrained filename.
		{"y.go", "//go:build " + runtime.GOOS + "\n\npackage p\n", true},
		{"y.go", "//go:build ignore\n\npackage p\n", false},
		// Legacy +build lines are honored when no //go:build is present.
		{"z.go", "// +build ignore\n\npackage p\n", false},
		// Constraints must precede the package clause.
		{"w.go", "package p\n\n//go:build ignore\n", true},
	}
	for _, c := range cases {
		if got := buildFileIncluded(c.name, []byte(c.src)); got != c.want {
			t.Errorf("buildFileIncluded(%q, %q) = %v, want %v", c.name, c.src, got, c.want)
		}
	}
}

// TestModuleTypeChecksClean is the tentpole's acceptance check in test
// form: the type-checking loader resolves every package of the module with
// zero go/types errors.
func TestModuleTypeChecksClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	typed := 0
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("%s: %v", p.Path, e)
		}
		if p.TypesInfo != nil {
			typed++
		}
	}
	if typed == 0 {
		t.Fatal("no package was type-checked")
	}
	for _, p := range pkgs {
		if !strings.HasPrefix(p.Path, modulePath) {
			t.Errorf("package %s: import path lacks the %s module prefix", p.Path, modulePath)
		}
	}
}
