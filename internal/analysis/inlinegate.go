package analysis

import (
	"go/ast"
	"go/types"
)

// InlineGate verifies that calls inside //drlint:hotpath functions were
// actually inlined by the compiler. A non-inlined call in an inner loop
// pays frame setup and kills cross-call optimization, which is exactly the
// cost the hotpath annotation promises away — but some calls are too big
// to inline by design (a pooled Collector's Offer sits at cost ~151), so
// the annotation takes an explicit budget:
//
//	//drlint:hotpath inline=N
//
// meaning the author has measured and accepts up to N statically-resolved
// module calls in this function staying non-inlined. With no budget (plain
// //drlint:hotpath) every such call must inline. When the count exceeds the
// budget, every non-inlined site is reported with the compiler's own
// cannot-inline reason for its callee.
//
// Unlike hotalloc, the gate covers only functions carrying the annotation
// directly, not their transitive callees: the budget is an author-measured
// property of one function's inner loop, and an un-annotated callee has no
// doc comment to carry `inline=N`. Callees that matter are annotated
// themselves.
//
// Out of scope by construction: calls through interfaces or func values
// (no static callee), assembly-backed declarations (nothing to inline),
// go/defer statements (never inlined, governed by goroutinehygiene and
// hotalloc), panic arguments (cold path), and self-recursion.
var InlineGate = &Analyzer{
	Name: "inlinegate",
	Doc: "statically-resolved module calls in a //drlint:hotpath function must " +
		"be inlined by the compiler, up to the annotation's inline=N budget",
	Family:          "compiler-witness",
	NeedsAnnotation: true,
	NeedsTypes:      true,
	RunModule:       runInlineGate,
}

func runInlineGate(pass *ModulePass) {
	wc := newWitnessContext(pass)
	if wc == nil {
		return
	}
	for _, fi := range wc.graph.funcs {
		root, ok := wc.hot[fi.obj]
		if !ok || fi.decl.Body == nil || hotpathComment(fi.decl) == nil {
			continue
		}
		budget, bc, err := hotpathInlineBudget(fi.decl)
		if err != nil {
			pass.Reportf(fi.pkg, bc.Pos(), "malformed //drlint:hotpath annotation: %v", err)
			continue
		}
		sites := nonInlinedCalls(wc, fi)
		if len(sites) <= budget {
			continue
		}
		for _, s := range sites {
			pass.Reportf(fi.pkg, s.call.Lparen, "%s: call to %s is not inlined (%s); %d non-inlined call(s) exceed inline budget %d — shrink the callee or raise //drlint:hotpath inline=N",
				hotWhere(fi, root), qualifiedName(s.callee), s.reason, len(sites), budget)
		}
	}
}

type inlineSite struct {
	call   *ast.CallExpr
	callee *types.Func
	reason string
}

// nonInlinedCalls collects the statically-resolved module calls in fi's
// body that carry no "inlining call to" witness at their call site.
func nonInlinedCalls(wc *witnessContext, fi *funcInfo) []inlineSite {
	info := fi.pkg.TypesInfo
	fset := fi.pkg.Fset
	var sites []inlineSite
	var stack []ast.Node
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || inlineExempt(info, stack) {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil || callee == fi.obj {
			return true
		}
		cfi := wc.graph.byObj[callee]
		if cfi == nil || cfi.decl.Body == nil {
			return true // external, or an assembly stub
		}
		if wc.report.inlinedCalls[witnessKey(wc.root, fset.Position(call.Lparen))] {
			return true
		}
		// The compiler keys cannot-inline facts at the token after "func":
		// the name for plain functions, the receiver's paren for methods.
		reason := wc.report.cannotInline[witnessKey(wc.root, cfi.pkg.Fset.Position(cfi.decl.Name.Pos()))]
		if reason == "" && cfi.decl.Recv != nil {
			reason = wc.report.cannotInline[witnessKey(wc.root, cfi.pkg.Fset.Position(cfi.decl.Recv.Pos()))]
		}
		if reason == "" {
			reason = "no inlining witness at this call site"
		}
		sites = append(sites, inlineSite{call: call, callee: callee, reason: reason})
		return true
	})
	return sites
}

// inlineExempt reports whether the call at the top of stack sits in a
// context where inlining is impossible or irrelevant: the call of a go or
// defer statement, or a panic argument (cold by definition).
func inlineExempt(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(a.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	}
	return false
}
