package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// checker type-checks loaded packages. Module-internal imports ("repro/...")
// are resolved by parsing and checking the imported directory under the same
// module root; everything else (the stdlib) is resolved by the source
// importer, which type-checks $GOROOT/src on demand. One checker — and one
// stdlib cache — is shared across every package of a Load call, so the
// stdlib is checked at most once per run.
type checker struct {
	root    string
	fset    *token.FileSet
	std     types.Importer
	done    map[string]*types.Package // completed checks by import path
	loading map[string]bool           // cycle guard
	byPath  map[string]*Package       // parsed packages awaiting a check
}

func newChecker(root string, fset *token.FileSet) *checker {
	return &checker{
		root:    root,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		done:    map[string]*types.Package{},
		loading: map[string]bool{},
		byPath:  map[string]*Package{},
	}
}

// Import implements types.Importer over the module + stdlib split.
func (c *checker) Import(path string) (*types.Package, error) {
	if p, ok := c.done[path]; ok {
		return p, nil
	}
	if path != modulePath && !strings.HasPrefix(path, modulePath+"/") {
		p, err := c.std.Import(path)
		if err != nil {
			return nil, err
		}
		c.done[path] = p
		return p, nil
	}
	pkg := c.byPath[path]
	if pkg == nil {
		// A dependency outside the requested load set (e.g. a subtree run
		// importing a sibling package): parse it on demand.
		rel := strings.TrimPrefix(strings.TrimPrefix(path, modulePath), "/")
		if rel == "" {
			rel = "."
		}
		var err error
		pkg, err = parseDir(c.root, filepath.Join(c.root, rel), c.fset)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files for import %q", path)
		}
		c.byPath[path] = pkg
	}
	if err := c.check(pkg); err != nil {
		return nil, err
	}
	if pkg.Types == nil {
		return nil, fmt.Errorf("analysis: import %q has no non-test Go files", path)
	}
	return pkg.Types, nil
}

// check type-checks pkg's non-test files, attaching Types, TypesInfo, and
// any type errors to the package. Packages with no non-test files are left
// untyped (TypesInfo nil); type-aware analyzers skip them.
func (c *checker) check(pkg *Package) error {
	if pkg.Types != nil || len(pkg.TypeErrors) > 0 {
		return nil
	}
	if c.loading[pkg.Path] {
		return fmt.Errorf("analysis: import cycle through %q", pkg.Path)
	}
	c.loading[pkg.Path] = true
	defer delete(c.loading, pkg.Path)

	var files []*ast.File
	for _, f := range pkg.Files {
		if !f.Test {
			files = append(files, f.AST)
		}
	}
	if len(files) == 0 {
		return nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{
		Importer: c,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tp, err := cfg.Check(pkg.Path, c.fset, files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tp
	pkg.TypesInfo = info
	c.done[pkg.Path] = tp
	return nil
}

// typecheckAll checks every package in pkgs, recording failures as type
// errors on the package rather than aborting the run.
func typecheckAll(chk *checker, pkgs []*Package) {
	for _, pkg := range pkgs {
		if err := chk.check(pkg); err != nil {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		}
	}
}

// typeErrorDiagnostics converts a package's go/types errors into findings
// under the reserved rule name "typecheck", so a tree the compiler would
// reject cannot slip past the lint gate (and analyzers running on partial
// type information are visible rather than silent).
func typeErrorDiagnostics(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, err := range pkg.TypeErrors {
		d := Diagnostic{Rule: "typecheck"}
		if te, ok := err.(types.Error); ok {
			d.Pos = te.Fset.Position(te.Pos)
			d.Message = te.Msg
		} else {
			d.Pos = token.Position{Filename: filepath.Join(pkg.Dir, "?")}
			d.Message = err.Error()
		}
		out = append(out, d)
	}
	return out
}
