package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// goldenDiags is a fixed finding set exercising every output path: multiple
// rules, multiple files, and a position with column 0 (SARIF clamps to 1).
func goldenDiags() []Diagnostic {
	return []Diagnostic{
		{Pos: token.Position{Filename: "cmd/drtool/servebench.go", Line: 152, Column: 29}, Rule: "ctxflow", Message: "context.Background() outside main/tests discards the caller's deadline and cancellation; accept and propagate a context.Context instead"},
		{Pos: token.Position{Filename: "internal/serve/engine.go", Line: 42, Column: 7}, Rule: "lockhold", Message: "time.Sleep while holding mu; release the lock before blocking"},
		{Pos: token.Position{Filename: "internal/serve/stats.go", Line: 9, Column: 0}, Rule: "atomicmix", Message: "plain access to field served, which is accessed atomically at internal/serve/stats.go:30; every access must go through sync/atomic"},
	}
}

// checkGolden compares got against the committed golden file. Regenerate
// goldens by deleting them and re-running the test.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	want, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote golden %s", path)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden %s:\ngot:\n%s\nwant:\n%s", name, path, got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "", goldenDiags()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.json", buf.Bytes())
}

func TestWriteSARIFGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "", All(), goldenDiags()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.sarif", buf.Bytes())
}

// formatKey is the cross-format identity of one finding.
type formatKey struct {
	File    string
	Line    int
	Rule    string
	Message string
}

// TestFormatsAgree parses the JSON and SARIF outputs back and checks they
// describe the identical finding set, in the same order.
func TestFormatsAgree(t *testing.T) {
	diags := goldenDiags()

	var jsonBuf, sarifBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, "", diags); err != nil {
		t.Fatal(err)
	}
	if err := WriteSARIF(&sarifBuf, "", All(), diags); err != nil {
		t.Fatal(err)
	}

	var rep struct {
		Version  int `json:"version"`
		Count    int `json:"count"`
		Findings []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &rep); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if rep.Version != 1 || rep.Count != len(diags) {
		t.Fatalf("JSON header: version %d count %d, want 1 and %d", rep.Version, rep.Count, len(diags))
	}

	var sarif struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(sarifBuf.Bytes(), &sarif); err != nil {
		t.Fatalf("SARIF output does not parse: %v", err)
	}
	if sarif.Version != "2.1.0" || len(sarif.Runs) != 1 {
		t.Fatalf("SARIF envelope: version %q, %d runs", sarif.Version, len(sarif.Runs))
	}
	run := sarif.Runs[0]
	if run.Tool.Driver.Name != "drlint" {
		t.Fatalf("SARIF driver name %q", run.Tool.Driver.Name)
	}

	// Every result ruleId must resolve in the driver's rule table.
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, r := range run.Results {
		if !ruleIDs[r.RuleID] {
			t.Errorf("SARIF result ruleId %q not in the driver rule table", r.RuleID)
		}
	}

	var fromJSON, fromSARIF []formatKey
	for _, f := range rep.Findings {
		fromJSON = append(fromJSON, formatKey{f.File, f.Line, f.Rule, f.Message})
	}
	for _, r := range run.Results {
		if len(r.Locations) != 1 {
			t.Fatalf("SARIF result has %d locations", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		fromSARIF = append(fromSARIF, formatKey{loc.ArtifactLocation.URI, loc.Region.StartLine, r.RuleID, r.Message.Text})
	}
	if len(fromJSON) != len(fromSARIF) {
		t.Fatalf("JSON has %d findings, SARIF has %d", len(fromJSON), len(fromSARIF))
	}
	for i := range fromJSON {
		if fromJSON[i] != fromSARIF[i] {
			t.Errorf("finding %d diverges across formats:\n json: %+v\nsarif: %+v", i, fromJSON[i], fromSARIF[i])
		}
	}
}

func TestWriteTextForm(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, "", goldenDiags()[:1]); err != nil {
		t.Fatal(err)
	}
	want := "cmd/drtool/servebench.go:152:29: [ctxflow] context.Background() outside main/tests discards the caller's deadline and cancellation; accept and propagate a context.Context instead\n"
	if buf.String() != want {
		t.Fatalf("text form:\ngot  %q\nwant %q", buf.String(), want)
	}
}

func TestRelPath(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("work", "repo")
	if got := relPath(root, filepath.Join(root, "internal", "serve", "engine.go")); got != "internal/serve/engine.go" {
		t.Fatalf("relPath inside root = %q", got)
	}
	if got := relPath(root, filepath.Join(string(filepath.Separator)+"elsewhere", "x.go")); got != "/elsewhere/x.go" {
		t.Fatalf("relPath outside root = %q", got)
	}
	if got := relPath("", "a/b.go"); got != "a/b.go" {
		t.Fatalf("relPath with empty root = %q", got)
	}
}
