package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedProv closes the provenance gap globalrand leaves open. globalrand
// bans the global math/rand state and hardcoded literal seeds in library
// code, but it cannot see where an injected seed came from: a seed built
// from time.Now() or os.Getpid() passes globalrand and still makes every
// run unreproducible. SeedProv traces each seed expression — arguments to
// math/rand source constructors, arguments bound to module parameters
// named *seed*, and values assigned to *Seed* fields — back through local
// assignments, conversions, arithmetic, and module derivation helpers
// (shardSeed-style splitmix chains) to its leaves. Every leaf must be a
// fixed literal or constant, a struct/config field, a flag, a package-level
// variable, or a parameter of the enclosing function (whose own callers are
// then judged at their call sites). Leaves that reach wall clocks, process
// state, channels, or unvetted external calls are flagged.
var SeedProv = &Analyzer{
	Name: "seedprov",
	Doc: "every rand.Source/splitmix seed must trace to a config field, flag, " +
		"or fixed literal; clocks and process state make runs unreproducible",
	Family:     "determinism",
	NeedsTypes: true,
	Run:        runSeedProv,
}

// seedExternalAllowlist are non-module packages whose pure functions may
// appear on a seed derivation chain (parsing and bit mixing, no ambient
// state).
var seedExternalAllowlist = map[string]bool{
	"flag":      true,
	"strconv":   true,
	"math/bits": true,
	"hash/fnv":  true,
}

func runSeedProv(pass *Pass) {
	info := pass.Pkg.TypesInfo
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSeeds(pass, info, fd)
		}
	}
}

func checkSeeds(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range seedArgs(info, n) {
				reportBadSeed(pass, info, fd, arg)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if sel, ok := lhs.(*ast.SelectorExpr); ok && isSeedName(sel.Sel.Name) {
					reportBadSeed(pass, info, fd, n.Rhs[i])
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok && isSeedName(id.Name) {
				if _, isField := info.Uses[id].(*types.Var); isField || info.Uses[id] == nil {
					reportBadSeed(pass, info, fd, n.Value)
				}
			}
		}
		return true
	})
}

// isSeedName matches identifiers that carry seed semantics by naming
// convention: Seed, seed, BaseSeed, seedLo, ...
func isSeedName(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// seedArgs returns the arguments of call that are seeds: every argument of
// a math/rand source constructor, and each argument bound to a module
// parameter whose name matches the seed convention.
func seedArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	callee := calleeOf(info, call)
	if callee == nil || callee.Pkg() == nil {
		return nil
	}
	pkgPath := callee.Pkg().Path()
	if pkgPath == "math/rand" || pkgPath == "math/rand/v2" {
		switch callee.Name() {
		case "NewSource", "NewPCG", "NewChaCha8", "Seed":
			return call.Args
		}
		return nil
	}
	if !strings.HasPrefix(pkgPath, modulePath) {
		return nil
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []ast.Expr
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if pi < sig.Params().Len() && isSeedName(sig.Params().At(pi).Name()) {
			out = append(out, arg)
		}
	}
	return out
}

// reportBadSeed traces expr's provenance and reports the first leaf that
// is not a blessed origin.
func reportBadSeed(pass *Pass, info *types.Info, fd *ast.FuncDecl, expr ast.Expr) {
	if bad, desc := badSeedLeaf(info, fd, expr, map[types.Object]bool{}); bad != nil {
		pass.Reportf(bad.Pos(), "seed derives from %s, not a config field, flag, or fixed literal; thread the seed through configuration so runs are reproducible", desc)
	}
}

// badSeedLeaf walks expr's dataflow leaves. It returns a non-nil
// expression and description for the first unacceptable origin, or nil
// when every leaf is blessed. visiting breaks local-assignment cycles.
func badSeedLeaf(info *types.Info, fd *ast.FuncDecl, expr ast.Expr, visiting map[types.Object]bool) (ast.Expr, string) {
	expr = ast.Unparen(expr)
	if tv, ok := info.Types[expr]; ok && tv.Value != nil {
		return nil, "" // compile-time constant, however it is spelled
	}
	switch e := expr.(type) {
	case *ast.BasicLit:
		return nil, ""
	case *ast.Ident:
		return badSeedIdent(info, fd, e, visiting)
	case *ast.SelectorExpr:
		// A field selection is config provenance; a package-qualified
		// name resolves like a plain identifier.
		if sel, ok := info.Selections[e]; ok {
			if _, isVar := sel.Obj().(*types.Var); isVar {
				return nil, ""
			}
			return e, "method value " + sel.Obj().Name()
		}
		return badSeedIdent(info, fd, e.Sel, visiting)
	case *ast.CallExpr:
		return badSeedCall(info, fd, e, visiting)
	case *ast.BinaryExpr:
		if bad, desc := badSeedLeaf(info, fd, e.X, visiting); bad != nil {
			return bad, desc
		}
		return badSeedLeaf(info, fd, e.Y, visiting)
	case *ast.UnaryExpr:
		if e.Op.String() == "<-" {
			return e, "a channel receive"
		}
		return badSeedLeaf(info, fd, e.X, visiting)
	case *ast.StarExpr:
		return badSeedLeaf(info, fd, e.X, visiting)
	case *ast.IndexExpr:
		if bad, desc := badSeedLeaf(info, fd, e.X, visiting); bad != nil {
			return bad, desc
		}
		return badSeedLeaf(info, fd, e.Index, visiting)
	}
	return expr, "an untraceable expression"
}

// badSeedIdent judges one identifier leaf: constants, fields, parameters,
// and package-level variables are blessed; locals are traced through their
// assignments.
func badSeedIdent(info *types.Info, fd *ast.FuncDecl, id *ast.Ident, visiting map[types.Object]bool) (ast.Expr, string) {
	obj := info.ObjectOf(id)
	switch obj := obj.(type) {
	case nil:
		return id, "an unresolved identifier"
	case *types.Const:
		return nil, ""
	case *types.Var:
		if obj.IsField() {
			return nil, "" // config/struct field
		}
		if scope := obj.Parent(); scope != nil && scope.Parent() == types.Universe {
			return nil, "" // package-level variable (flag targets live here)
		}
		if isParamOf(info, fd, obj) {
			return nil, "" // caller's responsibility, judged at its call site
		}
		if visiting[obj] {
			return nil, ""
		}
		visiting[obj] = true
		defer delete(visiting, obj)
		if rhs := localAssignment(info, fd, obj); rhs != nil {
			return badSeedLeaf(info, fd, rhs, visiting)
		}
		if rs, isKey := rangeBinding(info, fd, obj); rs != nil {
			return badSeedRange(info, fd, rs, isKey, id, visiting)
		}
		return id, "local " + obj.Name() + " with no traceable assignment"
	}
	return id, "identifier " + id.Name
}

// badSeedCall judges a call on the derivation chain: conversions recurse,
// module helpers and allowlisted pure packages recurse into arguments,
// anything else (clocks, process state, crypto readers) is the leak.
func badSeedCall(info *types.Info, fd *ast.FuncDecl, call *ast.CallExpr, visiting map[types.Object]bool) (ast.Expr, string) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return badSeedLeaf(info, fd, call.Args[0], visiting) // conversion
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return nil, "" // len/cap/min/max of something
		}
	}
	callee := calleeOf(info, call)
	if callee == nil || callee.Pkg() == nil {
		return call, "a dynamic call"
	}
	pkgPath := callee.Pkg().Path()
	if strings.HasPrefix(pkgPath, modulePath) || seedExternalAllowlist[pkgPath] {
		for _, arg := range call.Args {
			if bad, desc := badSeedLeaf(info, fd, arg, visiting); bad != nil {
				return bad, desc
			}
		}
		return nil, ""
	}
	return call, pkgPath + "." + callee.Name() + "()"
}

// isParamOf reports whether obj is a parameter, receiver, or named result
// of fd.
func isParamOf(info *types.Info, fd *ast.FuncDecl, obj *types.Var) bool {
	def, _ := info.Defs[fd.Name].(*types.Func)
	if def == nil {
		return false
	}
	sig, ok := def.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil && obj == recv {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if obj == sig.Params().At(i) {
			return true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if obj == sig.Results().At(i) {
			return true
		}
	}
	// Parameters of a closure literal inside fd also count: the value bound
	// there comes from the closure's caller, which is judged in turn.
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return !found
		}
		for _, field := range fl.Type.Params.List {
			for _, name := range field.Names {
				if info.ObjectOf(name) == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// rangeBinding finds the range statement in fd whose key or value binds
// obj, reporting which side it is.
func rangeBinding(info *types.Info, fd *ast.FuncDecl, obj *types.Var) (*ast.RangeStmt, bool) {
	var out *ast.RangeStmt
	isKey := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return out == nil
		}
		if id, ok := rs.Key.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			out, isKey = rs, true
		}
		if id, ok := rs.Value.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			out, isKey = rs, false
		}
		return out == nil
	})
	return out, isKey
}

// badSeedRange judges a range-bound leaf. A key over anything ordered
// (slice, array, integer) is a deterministic index and passes; the two
// genuinely nondeterministic sources — map iteration and channel receives —
// are flagged; a value leaf inherits the container's provenance.
func badSeedRange(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, isKey bool, id *ast.Ident, visiting map[types.Object]bool) (ast.Expr, string) {
	t := info.TypeOf(rs.X)
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			return id, "map iteration order"
		case *types.Chan:
			return id, "a channel receive"
		}
	}
	if isKey {
		return nil, ""
	}
	return badSeedLeaf(info, fd, rs.X, visiting)
}

// localAssignment finds the last assignment or declaration of obj inside
// fd's body and returns its right-hand side.
func localAssignment(info *types.Info, fd *ast.FuncDecl, obj *types.Var) ast.Expr {
	var rhs ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, l := range st.Lhs {
				if id, ok := l.(*ast.Ident); ok && info.ObjectOf(id) == obj {
					rhs = st.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if info.ObjectOf(name) == obj && i < len(st.Values) {
					rhs = st.Values[i]
				}
			}
		}
		return true
	})
	return rhs
}
