package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// GlobalRand enforces the determinism contract of the LSH index and the
// synthetic generators: every random draw must come from an injected,
// explicitly seeded *rand.Rand, so that one root seed reproduces an entire
// experiment bit-for-bit. Two shapes break that contract in non-test code:
//
//  1. calls to math/rand's top-level convenience functions (rand.Float64,
//     rand.Intn, rand.Shuffle, ...), which draw from the shared global
//     source and are ordering-dependent under concurrency; and
//  2. rand.NewSource / rand.New(rand.NewSource(...)) with a hardcoded
//     literal seed inside library code, which pins a stream that callers
//     can neither vary nor reproduce as part of their own seed plan.
//
// Constructors fed a threaded seed (a parameter, config field, or derived
// value) are the approved pattern. Deliberate fixed constructions — e.g.
// reproducing a figure from the paper verbatim — carry a justified
// //drlint:ignore directive instead.
var GlobalRand = &Analyzer{
	Name:   "globalrand",
	Family: "syntactic",
	Doc:    "randomness must flow through an injected seeded *rand.Rand; no global math/rand, no literal seeds in library code",
	Run:    runGlobalRand,
}

// randConstructors are the math/rand functions that build sources/streams
// rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.SourceFiles() {
		alias := importAlias(f.AST, "math/rand")
		if alias == "" {
			alias = importAlias(f.AST, "math/rand/v2")
		}
		if alias == "" || alias == "." {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || pkgID.Name != alias || pkgID.Obj != nil {
				return true
			}
			name := sel.Sel.Name
			if !randConstructors[name] {
				if ast.IsExported(name) {
					pass.Reportf(call.Pos(),
						"call to global %s.%s draws from math/rand's shared source; inject a seeded *rand.Rand instead", alias, name)
				}
				return true
			}
			if name == "NewSource" && len(call.Args) == 1 && isIntLiteral(call.Args[0]) {
				pass.Reportf(call.Pos(),
					"hardcoded seed %s: thread the seed from a parameter or config so callers control reproducibility", litText(call.Args[0]))
			}
			return true
		})
	}
}

// importAlias returns the name the file refers to importPath by: its alias,
// the default last path element, "." for dot imports, or "" when the file
// does not import it.
func importAlias(f *ast.File, importPath string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p
	}
	return ""
}

// isIntLiteral matches a literal integer seed, including a negated one.
func isIntLiteral(e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = u.X
	}
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT
}

func litText(e ast.Expr) string {
	if u, ok := e.(*ast.UnaryExpr); ok {
		if lit, ok := u.X.(*ast.BasicLit); ok {
			return u.Op.String() + lit.Value
		}
	}
	if lit, ok := e.(*ast.BasicLit); ok {
		return lit.Value
	}
	return "<literal>"
}
