package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// This file holds the intra-procedural value-tracking helpers the dataflow
// rules share: recognizing sync.Pool-backed scratch, "this value is the
// function's result" sinks, capacity-guarded growth, and per-function
// summaries (returns fresh memory / result aliases a parameter / retains a
// parameter) that let call sites be judged without inlining the callee.
// Everything here is deliberately one-hop and object-identity based — strong
// enough for the idioms this module actually uses, simple enough to stay
// predictable.

// hotpathDirective is the annotation marking a function as an allocation-free
// hot path for the hotalloc rule.
const hotpathDirective = "//drlint:hotpath"

// hasHotpathDirective reports whether the function's doc comment group
// carries a //drlint:hotpath line, with or without arguments (the
// `inline=N` budget inlinegate consumes).
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	return hotpathComment(fd) != nil
}

// hotpathComment returns the //drlint:hotpath comment line of fd's doc
// group, or nil when the function is not annotated.
func hotpathComment(fd *ast.FuncDecl) *ast.Comment {
	if fd.Doc == nil {
		return nil
	}
	for _, c := range fd.Doc.List {
		t := strings.TrimSpace(c.Text)
		if t == hotpathDirective || strings.HasPrefix(t, hotpathDirective+" ") {
			return c
		}
	}
	return nil
}

// hotpathInlineBudget parses the optional arguments of a //drlint:hotpath
// annotation. The only recognized argument is `inline=N`: the number of
// statically-resolved module calls in this function's body the author
// accepts staying non-inlined (measured, deliberate costs like a pooled
// collector's Offer). Absent annotation or absent argument means budget 0.
// The comment is returned for error positioning; a non-nil error describes
// a malformed argument list.
func hotpathInlineBudget(fd *ast.FuncDecl) (int, *ast.Comment, error) {
	c := hotpathComment(fd)
	if c == nil {
		return 0, nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), hotpathDirective))
	if rest == "" {
		return 0, c, nil
	}
	budget := 0
	for _, tok := range strings.Fields(rest) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || k != "inline" {
			return 0, c, fmt.Errorf("unknown argument %q (grammar: //drlint:hotpath [inline=N])", tok)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, c, fmt.Errorf("inline budget %q is not a non-negative integer", v)
		}
		budget = n
	}
	return budget, c, nil
}

// poolGetVars returns the objects assigned (directly or through a type
// assertion) from a (*sync.Pool).Get call anywhere in body. Allocations
// guarded by `if v == nil` on such a variable are pool-miss refills — the
// amortized-to-zero idiom hotalloc accepts.
func poolGetVars(info *types.Info, body ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		rhs := ast.Unparen(as.Rhs[0])
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ast.Unparen(ta.X)
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isPoolGet(info, call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// isPoolGet reports whether call is (*sync.Pool).Get.
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	return f.FullName() == "(*sync.Pool).Get"
}

// sinkVars returns the local objects whose value reaches a return statement
// or a channel send in body. An allocation flowing into a sink is the
// function's deliverable — materializing a result is the caller's cost, not
// a hidden hot-path allocation.
func sinkVars(info *types.Info, body ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					if _, isVar := obj.(*types.Var); isVar {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				mark(r)
			}
		case *ast.SendStmt:
			mark(st.Value)
		}
		return true
	})
	return out
}

// condHasCapLenGuard reports whether the if-condition contains a cap(...) or
// len(...) call inside a comparison — the shape of every "grow only when the
// reusable buffer is too small" guard in this module.
func condHasCapLenGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if id.Name == "cap" || id.Name == "len" {
				found = true
			}
		}
		return true
	})
	return found
}

// condIsNilCheckOn reports whether cond compares one of the given objects
// against nil (either order, == or !=).
func condIsNilCheckOn(info *types.Info, cond ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		check := func(a, b ast.Expr) {
			id, ok := ast.Unparen(a).(*ast.Ident)
			if !ok {
				return
			}
			if nid, ok := ast.Unparen(b).(*ast.Ident); !ok || nid.Name != "nil" {
				return
			}
			if obj := info.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		check(be.X, be.Y)
		check(be.Y, be.X)
		return true
	})
	return found
}

// preSizedExprs collects the render (types.ExprString) of every expression
// assigned a fresh make(...) under a cap/len guard in body. A later
// `x = append(x, ...)` on such an expression reuses the guarded capacity, so
// hotalloc treats it as clean.
func preSizedExprs(body ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !condHasCapLenGuard(ifs.Cond) {
			return true
		}
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
					continue
				}
				out[types.ExprString(as.Lhs[i])] = true
			}
			return true
		})
		return true
	})
	return out
}

// allocExempt bundles the per-function value sets behind the exemption walk
// hotalloc and escapegate share: a context that makes an allocation (or a
// compiler-witnessed escape) acceptable on a hot path.
type allocExempt struct {
	info  *types.Info
	pools map[types.Object]bool
	sinks map[types.Object]bool
}

func newAllocExempt(info *types.Info, body ast.Node) *allocExempt {
	return &allocExempt{
		info:  info,
		pools: poolGetVars(info, body),
		sinks: sinkVars(info, body),
	}
}

// exempted walks the ancestor stack looking for a context that makes an
// allocation acceptable: a panic argument, a cap/len-guarded or
// pool-miss-guarded branch, or a statement whose value is the function's
// result (return, channel send, or assignment to a variable that reaches
// one).
func (x *allocExempt) exempted(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(a.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := x.info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		case *ast.IfStmt:
			if condHasCapLenGuard(a.Cond) {
				return true
			}
			if condIsNilCheckOn(x.info, a.Cond, x.pools) {
				return true
			}
		case *ast.ReturnStmt, *ast.SendStmt:
			return true
		case *ast.AssignStmt:
			for _, lhs := range a.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := x.info.ObjectOf(id); obj != nil && x.sinks[obj] {
						return true
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range a.Names {
				if obj := x.info.ObjectOf(name); obj != nil && x.sinks[obj] {
					return true
				}
			}
		}
	}
	return false
}

// funcFacts is the one-hop summary of a module function the call-site rules
// consume.
type funcFacts struct {
	// returnsFresh: every return path hands back memory allocated inside
	// the call (composite literal, make, new, append, conversion) — never a
	// pooled or parameter-aliasing value. Calling such a function from a
	// hot path pays an allocation unless the result sinks.
	returnsFresh bool
	// aliasParams: the result may alias the memory of parameter i
	// (receiver encoded as -1). Used by unsafelife to propagate mmap taint
	// through zero-copy cast helpers like castF64 or Dense.RawRow.
	aliasParams map[int]bool
	// retainsParams: parameter i is stored into a field of a composite or
	// struct the function builds or mutates — the value outlives the call.
	retainsParams map[int]bool
}

// computeFuncFacts summarizes every function in the call graph.
func computeFuncFacts(g *callGraph) map[*types.Func]*funcFacts {
	out := map[*types.Func]*funcFacts{}
	for _, fi := range g.funcs {
		out[fi.obj] = summarize(fi)
	}
	return out
}

// paramIndexOf maps an object to its parameter index in fi's signature
// (receiver -1), or (0, false) if it is not a parameter.
func paramIndexOf(fi *funcInfo, obj types.Object) (int, bool) {
	sig, ok := fi.obj.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	if recv := sig.Recv(); recv != nil && obj == recv {
		return -1, true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if obj == sig.Params().At(i) {
			return i, true
		}
	}
	return 0, false
}

func summarize(fi *funcInfo) *funcFacts {
	facts := &funcFacts{aliasParams: map[int]bool{}, retainsParams: map[int]bool{}}
	if fi.decl.Body == nil {
		return facts
	}
	info := fi.pkg.TypesInfo

	pools := poolGetVars(info, fi.decl.Body)

	// Freshly allocated locals: vars assigned from an allocating expression
	// and never from a pool.
	freshVars := map[types.Object]bool{}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) || !isAllocExpr(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && !pools[obj] {
					freshVars[obj] = true
				}
			}
		}
		return true
	})

	returns := 0
	freshReturns := 0
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested closures have their own returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		returns++
		for _, r := range ret.Results {
			r = ast.Unparen(r)
			if isAllocExpr(r) {
				freshReturns++
				continue
			}
			if id, ok := r.(*ast.Ident); ok {
				obj := info.ObjectOf(id)
				if obj != nil && freshVars[obj] {
					freshReturns++
					continue
				}
				if obj != nil {
					if i, isParam := paramIndexOf(fi, obj); isParam {
						facts.aliasParams[i] = true
					}
				}
				continue
			}
			// Any parameter referenced in the returned expression (outside
			// len/cap) may be aliased by the result: slicing, field
			// selection, unsafe casts all preserve the backing memory.
			markAliasedParams(fi, r, facts)
		}
		return true
	})
	facts.returnsFresh = returns > 0 && freshReturns >= returns && len(facts.aliasParams) == 0

	// Retention: a parameter stored into a composite-literal field or onto
	// a selector (x.f = param) outlives the call.
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if id, ok := ast.Unparen(v).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						if i, isParam := paramIndexOf(fi, obj); isParam {
							facts.retainsParams[i] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) {
					break
				}
				if _, ok := lhs.(*ast.SelectorExpr); !ok {
					continue
				}
				if id, ok := ast.Unparen(st.Rhs[i]).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						if pi, isParam := paramIndexOf(fi, obj); isParam {
							facts.retainsParams[pi] = true
						}
					}
				}
			}
		}
		return true
	})
	return facts
}

// markAliasedParams records every parameter referenced inside expr (skipping
// len/cap arguments, which read only the header) as potentially aliased by
// the function result.
func markAliasedParams(fi *funcInfo, expr ast.Expr, facts *funcFacts) {
	info := fi.pkg.TypesInfo
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				if i, isParam := paramIndexOf(fi, obj); isParam {
					facts.aliasParams[i] = true
				}
			}
		}
		return true
	})
}

// isAllocExpr reports whether evaluating e performs a heap allocation by
// construction: &T{...}, slice/map composite literals, make, new, append,
// and string<->byte/rune conversions. Conservative on purpose — value
// struct literals and [N]T arrays are not allocations.
func isAllocExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
			return true
		}
	case *ast.CompositeLit:
		switch e.Type.(type) {
		case *ast.ArrayType:
			// Slice literals allocate; fixed arrays ([N]T{...}) do not.
			at := e.Type.(*ast.ArrayType)
			return at.Len == nil
		case *ast.MapType:
			return true
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make", "new", "append":
				return true
			}
		}
	}
	return false
}
