package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DimGuard enforces the invariant PR 2 created when it hoisted per-pair
// length checks out of the scan loops: every exported function in the
// numeric kernel packages that accepts two or more vector ([]float64) or
// matrix (*Dense and friends) parameters must validate their dimensions —
// via a guard helper or an explicit len()/Rows()/Cols() check — before it
// starts indexing into them. A kernel that skips the guard turns a caller's
// dimension mismatch into a silent wrong answer or an out-of-range panic
// deep inside a blocked loop.
var DimGuard = &Analyzer{
	Name:   "dimguard",
	Family: "syntactic",
	Doc:    "exported numeric kernels taking ≥2 vector/matrix parameters must validate dimensions before indexing",
	Run:    runDimGuard,
}

// dimGuardPackages are the import-path suffixes the rule applies to: the
// packages whose exported functions are dimension-sensitive hot kernels.
var dimGuardPackages = []string{"internal/linalg", "internal/knn"}

// dimGuardHelpers are recognized guard helpers: a plain or method call to
// any of these names counts as dimension validation.
var dimGuardHelpers = map[string]bool{
	"checkLens":     true,
	"checkLen":      true,
	"checkIndex":    true,
	"checkSameDims": true,
	"checkDims":     true,
}

func dimGuardApplies(path string) bool {
	for _, suffix := range dimGuardPackages {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// isVectorType reports whether the parameter type is a float vector
// ([]float64, []float32) or a quantized code vector ([]uint8, []byte,
// []uint16 — the store's scan-kernel payloads): both kinds carry a
// per-dimension length that must agree with their peers before indexing.
func isVectorType(t ast.Expr) bool {
	arr, ok := t.(*ast.ArrayType)
	if !ok || arr.Len != nil {
		return false
	}
	id, ok := arr.Elt.(*ast.Ident)
	if !ok {
		return false
	}
	switch id.Name {
	case "float64", "float32", "uint8", "byte", "uint16":
		return true
	}
	return false
}

// isMatrixType reports whether the parameter type is a (pointer to a)
// matrix-like named type: Dense or anything ending in "Matrix".
func isMatrixType(t ast.Expr) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if sel, ok := t.(*ast.SelectorExpr); ok {
		t = sel.Sel
	}
	id, ok := t.(*ast.Ident)
	return ok && (id.Name == "Dense" || strings.HasSuffix(id.Name, "Matrix"))
}

// dimParam is one tracked parameter of a function under the rule.
type dimParam struct {
	name   string
	matrix bool
}

func runDimGuard(pass *Pass) {
	if !dimGuardApplies(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			params := trackedParams(fn)
			if len(params) < 2 {
				continue
			}
			checkDimGuard(pass, fn, params)
		}
	}
}

func trackedParams(fn *ast.FuncDecl) []dimParam {
	var out []dimParam
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			vec := isVectorType(field.Type)
			mat := isMatrixType(field.Type)
			if !vec && !mat {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				out = append(out, dimParam{name: name.Name, matrix: mat})
			}
		}
	}
	// The receiver participates: a method on *Dense taking another *Dense
	// is a two-matrix kernel.
	collect(fn.Recv)
	collect(fn.Type.Params)
	return out
}

// checkDimGuard reports fn when a tracked parameter is indexed before any
// dimension validation.
func checkDimGuard(pass *Pass, fn *ast.FuncDecl, params []dimParam) {
	byName := map[string]dimParam{}
	for _, p := range params {
		byName[p.name] = p
	}

	guardPos := token.Pos(-1) // earliest validation
	var firstUse ast.Node     // earliest indexing use
	var firstUseParam string

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if name := calleeName(node); dimGuardHelpers[name] {
				if guardPos == -1 || node.Pos() < guardPos {
					guardPos = node.Pos()
				}
			}
			// Matrix element/row access counts as an indexing use.
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if p, tracked := byName[id.Name]; tracked && p.matrix && matrixAccessMethods[sel.Sel.Name] {
						if firstUse == nil || node.Pos() < firstUse.Pos() {
							firstUse = node
							firstUseParam = id.Name
						}
					}
				}
			}
		case *ast.IfStmt:
			if condValidatesDims(node.Cond, byName) {
				if guardPos == -1 || node.Pos() < guardPos {
					guardPos = node.Pos()
				}
			}
		case *ast.IndexExpr:
			if id, ok := node.X.(*ast.Ident); ok {
				if _, tracked := byName[id.Name]; tracked {
					if firstUse == nil || node.Pos() < firstUse.Pos() {
						firstUse = node
						firstUseParam = id.Name
					}
				}
			}
			// p.data[...] on a matrix parameter.
			if sel, ok := node.X.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if p, tracked := byName[id.Name]; tracked && p.matrix {
						if firstUse == nil || node.Pos() < firstUse.Pos() {
							firstUse = node
							firstUseParam = id.Name
						}
					}
				}
			}
		}
		return true
	})

	if firstUse == nil {
		return // delegates without indexing; the callee owns the guard
	}
	if guardPos != -1 && guardPos <= firstUse.Pos() {
		return
	}
	pass.Reportf(firstUse.Pos(),
		"exported kernel %s indexes parameter %q before validating dimensions (add a length/dims guard or call a check helper first)",
		fn.Name.Name, firstUseParam)
}

// matrixAccessMethods are Dense methods that read storage by index and
// therefore require dimensions to have been validated first.
var matrixAccessMethods = map[string]bool{
	"At": true, "Row": true, "RawRow": true, "Col": true,
}

// calleeName extracts the bare called-function name from fn() or x.fn().
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// condValidatesDims reports whether an if-condition inspects the size of a
// tracked parameter: len(p) for vectors; p.Rows()/p.Cols()/p.Dims() or the
// package-internal p.rows/p.cols fields for matrices.
func condValidatesDims(cond ast.Expr, params map[string]dimParam) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "len" && len(node.Args) == 1 {
				if arg, ok := node.Args[0].(*ast.Ident); ok {
					if _, tracked := params[arg.Name]; tracked {
						found = true
					}
				}
			}
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok && dimMethods[sel.Sel.Name] {
				if id, ok := sel.X.(*ast.Ident); ok {
					if p, tracked := params[id.Name]; tracked && p.matrix {
						found = true
					}
				}
			}
		case *ast.SelectorExpr:
			if dimFields[node.Sel.Name] {
				if id, ok := node.X.(*ast.Ident); ok {
					if p, tracked := params[id.Name]; tracked && p.matrix {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

var dimMethods = map[string]bool{"Rows": true, "Cols": true, "Dims": true, "Len": true}
var dimFields = map[string]bool{"rows": true, "cols": true}
