package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap enforces the serving layer's error contract: the typed sentinel
// family (serve.ErrOverloaded, ErrDeadline, ErrClosed, ErrDims — any
// module-level `var ErrX = ...` implementing error) is part of the public
// API, and callers branch on it. That contract survives wrapping only if
// everyone plays by errors.Is/%w:
//
//   - comparing a returned error to a sentinel with == or != (or a switch
//     case) breaks the moment any layer wraps the error with context, which
//     the engine does ("%w (while awaiting result: ...)");
//   - wrapping a sentinel with %v or %s instead of %w severs the errors.Is
//     chain for every caller downstream;
//   - string-matching on Error() text couples callers to message wording
//     that carries no compatibility promise.
var ErrWrap = &Analyzer{
	Name:       "errwrap",
	Family:     "type-aware",
	Doc:        "module sentinel errors must be compared with errors.Is and wrapped with %w — never ==/!=, switch cases, or string matching",
	NeedsTypes: true,
	Run:        runErrWrap,
}

func runErrWrap(pass *Pass) {
	info := pass.Pkg.TypesInfo
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if s := sentinelObj(info, x.X); s != nil {
					pass.Reportf(x.OpPos, "sentinel %s compared with %s; use errors.Is so wrapped errors still match", s.Name(), x.Op)
					return true
				}
				if s := sentinelObj(info, x.Y); s != nil {
					pass.Reportf(x.OpPos, "sentinel %s compared with %s; use errors.Is so wrapped errors still match", s.Name(), x.Op)
					return true
				}
				if errorTextCall(info, x.X) || errorTextCall(info, x.Y) {
					pass.Reportf(x.OpPos, "string comparison on Error() text; branch with errors.Is on a sentinel instead")
				}
			case *ast.SwitchStmt:
				if x.Tag == nil || !isErrorType(info.TypeOf(x.Tag)) {
					return true
				}
				for _, c := range x.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if s := sentinelObj(info, e); s != nil {
							pass.Reportf(e.Pos(), "sentinel %s in a switch case compares with ==; use errors.Is so wrapped errors still match", s.Name())
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, info, x)
				checkStringMatch(pass, info, x)
			}
			return true
		})
	}
}

// checkErrorfWrap flags fmt.Errorf calls that format a sentinel with a
// verb other than %w.
func checkErrorfWrap(pass *Pass, info *types.Info, call *ast.CallExpr) {
	if !isPkgCall(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return
	}
	for i, arg := range call.Args[1:] {
		s := sentinelObj(info, arg)
		if s == nil {
			continue
		}
		if i >= len(verbs) || verbs[i] != 'w' {
			pass.Reportf(arg.Pos(), "sentinel %s wrapped without %%w; errors.Is cannot match through this wrap", s.Name())
		}
	}
}

// checkStringMatch flags strings.Contains/HasPrefix/... applied to Error()
// text.
func checkStringMatch(pass *Pass, info *types.Info, call *ast.CallExpr) {
	if !isPkgCallAny(info, call, "strings", "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index") {
		return
	}
	for _, arg := range call.Args {
		if errorTextCall(info, arg) {
			pass.Reportf(call.Pos(), "string matching on Error() text; branch with errors.Is on a sentinel instead")
			return
		}
	}
}

// formatVerbs extracts the verb letters of a fmt format string in argument
// order. Returns ok=false on explicit argument indexes ("%[1]v"), which
// this scanner does not model.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			continue
		case '[':
			return nil, false
		default:
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}

// sentinelObj resolves e to a module-declared sentinel error variable
// (package-level `var ErrX ...` whose type implements error), or nil.
func sentinelObj(info *types.Info, e ast.Expr) *types.Var {
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	case *ast.ParenExpr:
		return sentinelObj(info, x.X)
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	// Module-declared, package-level, error-typed.
	path := v.Pkg().Path()
	if path != modulePath && !strings.HasPrefix(path, modulePath+"/") {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// errorTextCall reports whether e is a call to the Error() string method of
// an error value.
func errorTextCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().(*types.Basic)
	return ok && basic.Kind() == types.String
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// isPkgCall reports whether call is pkgPath.name(...), alias-aware.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

func isPkgCallAny(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	for _, n := range names {
		if isPkgCall(info, call, pkgPath, n) {
			return true
		}
	}
	return false
}
