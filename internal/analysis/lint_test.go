package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLintModule is the self-enforcing pass: every drlint analyzer runs
// over the whole module inside `go test ./...`, gated against the committed
// baseline exactly like CI, so a change that violates a numeric/concurrency/
// reproducibility invariant fails tier-1 CI even if nobody ran the CLI.
// Keep this green by fixing the finding, adding a justified //drlint:ignore
// directive at the site, or (for accepted pre-existing findings) recording
// it in .drlint-baseline.json with -write-baseline.
func TestLintModule(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunModule(root, All())
	if err != nil {
		t.Fatalf("drlint failed to load the module: %v", err)
	}
	baseline, err := LoadBaseline(filepath.Join(root, ".drlint-baseline.json"))
	if err != nil {
		t.Fatalf("loading the committed baseline: %v", err)
	}
	for _, d := range Gate(root, res, baseline) {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Log("fix the findings above or suppress with `//drlint:ignore <rule> <reason>`; see README \"Static analysis\"")
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
