// Package eval implements the paper's §4 evaluation methodology: the
// feature-stripping quality measure (class-prediction accuracy of the k=3
// nearest neighbors found without the class variable), precision of reduced
// neighbors against full-dimensional neighbors, and accuracy-versus-
// retained-dimensionality sweep curves for any component ordering.
package eval

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/reduction"
)

// PaperK is the neighbor count used throughout the paper's evaluation
// ("prediction accuracy of k = 3 nearest neighbors").
const PaperK = 3

// PredictionAccuracy runs the feature-stripping measurement on a point
// matrix with class labels: every point queries for its k nearest neighbors
// among the other points, and the accuracy is the fraction of all retrieved
// neighbors (over all queries) whose class matches the query's class.
// Queries are independent and evaluated in parallel; the result is exact
// and deterministic.
func PredictionAccuracy(x *linalg.Dense, labels []int, k int, m knn.Metric) float64 {
	n := x.Rows()
	if len(labels) != n {
		panic(fmt.Sprintf("eval: %d labels for %d points", len(labels), n))
	}
	if k <= 0 {
		panic(fmt.Sprintf("eval: k=%d must be positive", k))
	}
	var matches, total int64
	parallelRows(n, func(i int) {
		res := knn.Search(x, x.RawRow(i), k, m, i)
		var mt, tt int64
		for _, nb := range res {
			tt++
			if labels[nb.Index] == labels[i] {
				mt++
			}
		}
		atomic.AddInt64(&matches, mt)
		atomic.AddInt64(&total, tt)
	})
	if total == 0 {
		return 0
	}
	return float64(matches) / float64(total)
}

// parallelRows invokes fn(i) for every i in [0,n) across NumCPU workers.
// fn must be safe to call concurrently for distinct i.
func parallelRows(n int, fn func(i int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// DatasetAccuracy is PredictionAccuracy on a labelled data set with the
// paper's defaults (k = 3, Euclidean).
func DatasetAccuracy(d *dataset.Dataset) float64 {
	return PredictionAccuracy(d.X, d.Labels, PaperK, knn.Euclidean{})
}

// NeighborPrecision returns the mean overlap between each point's k nearest
// neighbors in the reduced space and in the reference (full) space — the
// paper's precision/recall with respect to the original nearest neighbors
// (with equal k on both sides, precision equals recall).
func NeighborPrecision(full, reduced *linalg.Dense, k int, m knn.Metric) float64 {
	if full.Rows() != reduced.Rows() {
		panic(fmt.Sprintf("eval: row mismatch %d vs %d", full.Rows(), reduced.Rows()))
	}
	n := full.Rows()
	sums := make([]float64, n)
	parallelRows(n, func(i int) {
		a := knn.Search(full, full.RawRow(i), k, m, i)
		b := knn.Search(reduced, reduced.RawRow(i), k, m, i)
		sums[i] = knn.Overlap(a, b)
	})
	sum := 0.0
	for _, v := range sums {
		sum += v
	}
	return sum / float64(n)
}

// CurvePoint is one sweep sample: accuracy using the first Dims components
// of an ordering.
type CurvePoint struct {
	Dims     int
	Accuracy float64
	// EnergyFraction is the fraction of total variance retained by the
	// selected components.
	EnergyFraction float64
	// Precision is the neighbor precision against the full-dimensional
	// data, when the sweep was configured to compute it (else NaN).
	Precision float64
}

// Curve is an accuracy-versus-dimensionality series — the data behind the
// paper's Figures 5, 8, 11, 13 and 15.
type Curve struct {
	// Label identifies the ordering/scaling variant.
	Label  string
	Points []CurvePoint
}

// Optimal returns the sweep point with maximum accuracy (the smallest
// dimensionality on ties — the paper prefers the most aggressive reduction
// among equals).
func (c Curve) Optimal() CurvePoint {
	if len(c.Points) == 0 {
		panic("eval: Optimal of empty curve")
	}
	best := c.Points[0]
	for _, p := range c.Points[1:] {
		// Strictly better accuracy wins; an exact tie (>= once > has
		// failed) falls to the smaller dimensionality.
		if p.Accuracy > best.Accuracy || (p.Accuracy >= best.Accuracy && p.Dims < best.Dims) {
			best = p
		}
	}
	return best
}

// At returns the curve point with exactly the given dimensionality, or
// false if that dimensionality was not swept.
func (c Curve) At(dims int) (CurvePoint, bool) {
	for _, p := range c.Points {
		if p.Dims == dims {
			return p, true
		}
	}
	return CurvePoint{}, false
}

// SweepConfig configures an accuracy sweep.
type SweepConfig struct {
	// K is the neighbor count (0 selects PaperK = 3).
	K int
	// Metric is the distance used in the reduced space (nil selects
	// Euclidean).
	Metric knn.Metric
	// Dims lists the dimensionalities to sample (nil selects
	// DefaultDimGrid over the full range).
	Dims []int
	// ComputePrecision additionally measures neighbor precision of every
	// sweep point against the full-dimensional normalized data.
	ComputePrecision bool
}

func (cfg *SweepConfig) withDefaults(d int) SweepConfig {
	out := *cfg
	if out.K == 0 {
		out.K = PaperK
	}
	if out.Metric == nil {
		out.Metric = knn.Euclidean{}
	}
	if out.Dims == nil {
		out.Dims = DefaultDimGrid(d, 16)
	}
	for _, k := range out.Dims {
		if k < 1 || k > d {
			panic(fmt.Sprintf("eval: sweep dimensionality %d out of [1,%d]", k, d))
		}
	}
	return out
}

// Sweep evaluates feature-stripped prediction accuracy as a function of the
// number of retained components, taking components in the given order
// (p.Order(reduction.ByEigenvalue) or p.Order(reduction.ByCoherence)).
// The data is rotated once; each sweep point is a column-prefix selection.
func Sweep(ds *dataset.Dataset, p *reduction.PCA, order []int, label string, cfg SweepConfig) Curve {
	c := cfg.withDefaults(ds.Dims())
	if len(order) != ds.Dims() {
		panic(fmt.Sprintf("eval: ordering has %d entries for %d components", len(order), ds.Dims()))
	}
	rotated := p.Transform(ds.X, order)
	curve := Curve{Label: label}
	for _, dims := range c.Dims {
		sub := rotated.SliceCols(prefix(dims))
		pt := CurvePoint{
			Dims:           dims,
			Accuracy:       PredictionAccuracy(sub, ds.Labels, c.K, c.Metric),
			EnergyFraction: p.EnergyFraction(order[:dims]),
			Precision:      math.NaN(),
		}
		if c.ComputePrecision {
			pt.Precision = NeighborPrecision(rotated, sub, c.K, c.Metric)
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve
}

func prefix(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// DefaultDimGrid returns up to `points` dimensionalities spanning [1, d]
// with geometric spacing (denser at the low end, where the paper's curves
// peak), always including 1 and d.
func DefaultDimGrid(d, points int) []int {
	if d < 1 {
		panic(fmt.Sprintf("eval: DefaultDimGrid d=%d", d))
	}
	if points < 2 || d <= points {
		out := make([]int, d)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	var out []int
	last := 0
	for i := 0; i < points; i++ {
		f := math.Pow(float64(d), float64(i)/float64(points-1))
		k := int(math.Round(f))
		if k <= last {
			k = last + 1
		}
		if k > d {
			k = d
		}
		out = append(out, k)
		last = k
		if k == d {
			break
		}
	}
	return out
}
