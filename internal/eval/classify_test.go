package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dataset/synthetic"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/reduction"
)

func TestClassifierPredictMajority(t *testing.T) {
	x := linalg.FromRows([][]float64{
		{0}, {0.1}, {0.2}, // class 0 cluster
		{10}, // lone class 1
	})
	ds := dataset.MustNew("c", x, []int{0, 0, 0, 1})
	c := NewClassifier(ds, 3, nil)
	if got := c.Predict([]float64{0.05}, -1); got != 0 {
		t.Fatalf("Predict = %d", got)
	}
	if got := c.Predict([]float64{10.1}, -1); got != 0 {
		// k=3 around the lone class-1 point still votes 2:1 for class 0.
		t.Fatalf("majority vote = %d, want 0 (outvoted)", got)
	}
	c1 := NewClassifier(ds, 1, knn.Manhattan{})
	if got := c1.Predict([]float64{10.1}, -1); got != 1 {
		t.Fatalf("1-NN = %d", got)
	}
}

func TestClassifierTieBreaksDeterministically(t *testing.T) {
	x := linalg.FromRows([][]float64{{0}, {2}})
	ds := dataset.MustNew("t", x, []int{1, 0})
	c := NewClassifier(ds, 2, nil)
	// One vote each: smaller label wins.
	if got := c.Predict([]float64{1}, -1); got != 0 {
		t.Fatalf("tie break = %d", got)
	}
}

func TestClassifierKValidation(t *testing.T) {
	ds := dataset.MustNew("v", linalg.NewDense(2, 1), []int{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewClassifier(ds, 0, nil)
}

func TestLeaveOneOutConfusion(t *testing.T) {
	// Two perfect clusters: perfect confusion matrix.
	x := linalg.FromRows([][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1},
		{50, 50}, {50.1, 50}, {50, 50.1}, {50.1, 50.1},
	})
	ds := dataset.MustNew("cm", x, []int{0, 0, 0, 0, 1, 1, 1, 1})
	cm := NewClassifier(ds, 3, nil).LeaveOneOut()
	if cm.Accuracy() != 1 || cm.Total != 8 || cm.Correct != 8 {
		t.Fatalf("confusion = %+v", cm)
	}
	for class := 0; class < 2; class++ {
		if cm.Precision(class) != 1 || cm.Recall(class) != 1 {
			t.Fatalf("class %d precision/recall != 1", class)
		}
	}
	if cm.MacroF1() != 1 {
		t.Fatalf("macro F1 = %v", cm.MacroF1())
	}
	var buf bytes.Buffer
	cm.Format(&buf)
	if !strings.Contains(buf.String(), "macro-F1") {
		t.Fatalf("Format incomplete:\n%s", buf.String())
	}
}

func TestConfusionMatrixImbalanced(t *testing.T) {
	// Hand-built matrix: class 0 predicted 3/4 right, class 1 1/2 right.
	cm := ConfusionMatrix{
		Counts:  [][]int{{3, 1}, {1, 1}},
		Total:   6,
		Correct: 4,
	}
	if got := cm.Accuracy(); math.Abs(got-4.0/6.0) > 1e-15 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := cm.Precision(0); math.Abs(got-0.75) > 1e-15 {
		t.Fatalf("precision(0) = %v", got)
	}
	if got := cm.Recall(1); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("recall(1) = %v", got)
	}
	if got := cm.Precision(1); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("precision(1) = %v", got)
	}
}

func TestConfusionMatrixEdgeCases(t *testing.T) {
	empty := ConfusionMatrix{Counts: [][]int{{0, 0}, {0, 0}}}
	if empty.Accuracy() != 0 || empty.MacroF1() != 0 {
		t.Fatalf("empty matrix stats nonzero")
	}
	if empty.Precision(0) != 0 || empty.Recall(1) != 0 {
		t.Fatalf("empty class stats nonzero")
	}
}

func TestClassifierReductionImprovesF1(t *testing.T) {
	// End-to-end: on the noisy set, classifying in the coherent subspace
	// beats classifying in the raw space.
	ds, _ := synthetic.NoisyDataA(1)
	raw := NewClassifier(ds, PaperK, nil).LeaveOneOut()

	// Reduce to the most coherent directions.
	reduced := reducedNoisyA(t, ds)
	red := NewClassifier(reduced, PaperK, nil).LeaveOneOut()
	if red.Accuracy() <= raw.Accuracy() {
		t.Fatalf("reduced classifier %.3f not above raw %.3f", red.Accuracy(), raw.Accuracy())
	}
	if red.MacroF1() <= raw.MacroF1() {
		t.Fatalf("reduced macro-F1 %.3f not above raw %.3f", red.MacroF1(), raw.MacroF1())
	}
}

// reducedNoisyA projects the noisy data set onto its most coherent
// directions (helper for the end-to-end classifier test).
func reducedNoisyA(t *testing.T, ds *dataset.Dataset) *dataset.Dataset {
	t.Helper()
	p, err := reduction.Fit(ds.X, reduction.Options{ComputeCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	return p.ReduceDataset(ds, p.TopK(reduction.ByCoherence, 5), "noisy-A reduced")
}
