package eval

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dataset/synthetic"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/reduction"
)

func TestPredictionAccuracyPerfectClusters(t *testing.T) {
	// Two tight, far-apart clusters: every neighbor shares the class.
	x := linalg.FromRows([][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1},
		{100, 100}, {100.1, 100}, {100, 100.1}, {100.1, 100.1},
	})
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1}
	if got := PredictionAccuracy(x, labels, 3, knn.Euclidean{}); got != 1 {
		t.Fatalf("accuracy = %v, want 1", got)
	}
}

func TestPredictionAccuracyLabelIndependence(t *testing.T) {
	// Labels unrelated to geometry: accuracy near the chance rate 0.5.
	ds := synthetic.UniformCube("u", 400, 5, 1)
	got := PredictionAccuracy(ds.X, ds.Labels, 3, knn.Euclidean{})
	if math.Abs(got-0.5) > 0.07 {
		t.Fatalf("chance accuracy = %v, want ≈0.5", got)
	}
}

func TestPredictionAccuracyHandComputed(t *testing.T) {
	// 1-D points 0,1,2,10 with labels a,a,b,b and k=1:
	// 0→1(a,match) 1→0(a,match) 2→1(a,miss) 10→2(b,match) = 3/4.
	x := linalg.FromRows([][]float64{{0}, {1}, {2}, {10}})
	labels := []int{0, 0, 1, 1}
	if got := PredictionAccuracy(x, labels, 1, knn.Euclidean{}); got != 0.75 {
		t.Fatalf("accuracy = %v, want 0.75", got)
	}
}

func TestPredictionAccuracyPanics(t *testing.T) {
	x := linalg.NewDense(3, 2)
	for name, fn := range map[string]func(){
		"label mismatch": func() { PredictionAccuracy(x, []int{0}, 1, knn.Euclidean{}) },
		"k zero":         func() { PredictionAccuracy(x, []int{0, 0, 0}, 0, knn.Euclidean{}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestDatasetAccuracyMatchesExplicit(t *testing.T) {
	ds := synthetic.UniformCube("u", 60, 4, 2)
	want := PredictionAccuracy(ds.X, ds.Labels, PaperK, knn.Euclidean{})
	if got := DatasetAccuracy(ds); got != want {
		t.Fatalf("DatasetAccuracy = %v, want %v", got, want)
	}
}

func TestNeighborPrecisionIdentity(t *testing.T) {
	ds := synthetic.UniformCube("u", 80, 6, 3)
	if got := NeighborPrecision(ds.X, ds.X, 3, knn.Euclidean{}); got != 1 {
		t.Fatalf("self precision = %v", got)
	}
}

func TestNeighborPrecisionDropsUnderProjection(t *testing.T) {
	// Projecting 20-D uniform data to 1-D scrambles neighborhoods.
	ds := synthetic.UniformCube("u", 200, 20, 4)
	p, err := reduction.Fit(ds.X, reduction.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reduced := p.Transform(ds.X, []int{0})
	got := NeighborPrecision(ds.X, reduced, 3, knn.Euclidean{})
	if got > 0.5 {
		t.Fatalf("precision after brutal projection = %v, expected low", got)
	}
}

func TestNeighborPrecisionRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NeighborPrecision(linalg.NewDense(3, 2), linalg.NewDense(4, 2), 1, knn.Euclidean{})
}

func TestCurveOptimalAndAt(t *testing.T) {
	c := Curve{Points: []CurvePoint{
		{Dims: 1, Accuracy: 0.5},
		{Dims: 5, Accuracy: 0.9},
		{Dims: 10, Accuracy: 0.9},
		{Dims: 20, Accuracy: 0.7},
	}}
	opt := c.Optimal()
	if opt.Dims != 5 || opt.Accuracy != 0.9 {
		t.Fatalf("Optimal = %+v (want dims=5 on tie)", opt)
	}
	if p, ok := c.At(10); !ok || p.Accuracy != 0.9 {
		t.Fatalf("At(10) = %+v,%v", p, ok)
	}
	if _, ok := c.At(7); ok {
		t.Fatalf("At(7) should miss")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("empty Optimal must panic")
		}
	}()
	Curve{}.Optimal()
}

func TestDefaultDimGrid(t *testing.T) {
	g := DefaultDimGrid(166, 16)
	if g[0] != 1 || g[len(g)-1] != 166 {
		t.Fatalf("grid endpoints = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not strictly increasing: %v", g)
		}
	}
	if len(g) > 16 {
		t.Fatalf("grid too long: %d", len(g))
	}
	// Small d: every dimensionality.
	if got := DefaultDimGrid(5, 16); len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("small grid = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("d=0 must panic")
		}
	}()
	DefaultDimGrid(0, 4)
}

func TestSweepOnLatentData(t *testing.T) {
	// The central qualitative claim (Figures 5/8/11): accuracy peaks at a
	// small dimensionality and beats the full-dimensional accuracy.
	ds := synthetic.MustGenerate(synthetic.LatentFactorConfig{
		Name: "sweeptest", N: 240, Dims: 40, Classes: 2,
		ConceptStrengths: []float64{5, 4, 3}, ClassSeparation: 2,
		NoiseStdDev: 1.5, Seed: 12,
	})
	p, err := reduction.Fit(ds.X, reduction.Options{Scaling: reduction.ScalingStudentize, ComputeCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	curve := Sweep(ds, p, p.Order(reduction.ByEigenvalue), "eig", SweepConfig{
		Dims: []int{1, 2, 3, 5, 8, 12, 20, 40},
	})
	if curve.Label != "eig" || len(curve.Points) != 8 {
		t.Fatalf("curve shape wrong: %+v", curve)
	}
	opt := curve.Optimal()
	full, ok := curve.At(40)
	if !ok {
		t.Fatalf("full point missing")
	}
	if opt.Dims > 12 {
		t.Fatalf("optimum at %d dims, expected aggressive (<=12)", opt.Dims)
	}
	if opt.Accuracy <= full.Accuracy {
		t.Fatalf("optimum %.3f not better than full-dim %.3f", opt.Accuracy, full.Accuracy)
	}
	// Energy fraction is monotone in dims and reaches 1 at full rank.
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].EnergyFraction < curve.Points[i-1].EnergyFraction {
			t.Fatalf("energy fraction not monotone")
		}
	}
	if math.Abs(curve.Points[len(curve.Points)-1].EnergyFraction-1) > 1e-9 {
		t.Fatalf("full-rank energy = %v", curve.Points[len(curve.Points)-1].EnergyFraction)
	}
	// Precision disabled: NaN.
	if !math.IsNaN(curve.Points[0].Precision) {
		t.Fatalf("precision should be NaN when not computed")
	}
}

func TestSweepWithPrecision(t *testing.T) {
	ds := synthetic.UniformCube("u", 100, 8, 5)
	p, err := reduction.Fit(ds.X, reduction.Options{})
	if err != nil {
		t.Fatal(err)
	}
	curve := Sweep(ds, p, p.Order(reduction.ByEigenvalue), "u", SweepConfig{
		Dims: []int{2, 8}, ComputePrecision: true,
	})
	// Full-rank projection is a rotation: precision 1.
	fullPt, _ := curve.At(8)
	if math.Abs(fullPt.Precision-1) > 1e-12 {
		t.Fatalf("full-rank precision = %v", fullPt.Precision)
	}
	lowPt, _ := curve.At(2)
	if !(lowPt.Precision < 1) {
		t.Fatalf("low-dim precision = %v, expected < 1", lowPt.Precision)
	}
}

func TestSweepValidation(t *testing.T) {
	ds := synthetic.UniformCube("u", 30, 4, 6)
	p, err := reduction.Fit(ds.X, reduction.Options{})
	if err != nil {
		t.Fatal(err)
	}
	order := p.Order(reduction.ByEigenvalue)
	for name, fn := range map[string]func(){
		"bad dims":     func() { Sweep(ds, p, order, "x", SweepConfig{Dims: []int{0}}) },
		"dims too big": func() { Sweep(ds, p, order, "x", SweepConfig{Dims: []int{5}}) },
		"short order":  func() { Sweep(ds, p, order[:2], "x", SweepConfig{}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

var _ = dataset.Dataset{}
