package eval

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/linalg"
)

// Classifier is a k-NN majority-vote classifier over a labelled reference
// set — the standard downstream consumer of a reduced representation and a
// stricter companion to the paper's per-neighbor match rate.
type Classifier struct {
	data   *linalg.Dense
	labels []int
	k      int
	metric knn.Metric
}

// NewClassifier builds a classifier over the reference data set (the matrix
// is retained, not copied). k must be positive; a nil metric selects
// Euclidean.
func NewClassifier(d *dataset.Dataset, k int, m knn.Metric) *Classifier {
	if k <= 0 {
		panic(fmt.Sprintf("eval: classifier k=%d must be positive", k))
	}
	if m == nil {
		m = knn.Euclidean{}
	}
	return &Classifier{data: d.X, labels: d.Labels, k: k, metric: m}
}

// Predict returns the majority label of the query's k nearest reference
// points (smallest label wins ties, for determinism). exclude skips one
// reference row (leave-one-out).
func (c *Classifier) Predict(query []float64, exclude int) int {
	res := knn.Search(c.data, query, c.k, c.metric, exclude)
	votes := map[int]int{}
	for _, nb := range res {
		votes[c.labels[nb.Index]]++
	}
	best, bestVotes := -1, -1
	for label, v := range votes {
		if v > bestVotes || (v == bestVotes && label < best) {
			best, bestVotes = label, v
		}
	}
	return best
}

// ConfusionMatrix counts predictions per (true class, predicted class)
// pair.
type ConfusionMatrix struct {
	// Counts[t][p] is the number of class-t points predicted as class p.
	Counts [][]int
	// Total is the number of classified points.
	Total int
	// Correct is the number of exact matches.
	Correct int
}

// LeaveOneOut classifies every point of the reference set against the
// others and tallies the confusion matrix.
func (c *Classifier) LeaveOneOut() ConfusionMatrix {
	classes := 0
	for _, l := range c.labels {
		if l >= classes {
			classes = l + 1
		}
	}
	cm := ConfusionMatrix{Counts: make([][]int, classes)}
	for t := range cm.Counts {
		cm.Counts[t] = make([]int, classes)
	}
	for i := 0; i < c.data.Rows(); i++ {
		pred := c.Predict(c.data.RawRow(i), i)
		cm.Counts[c.labels[i]][pred]++
		cm.Total++
		if pred == c.labels[i] {
			cm.Correct++
		}
	}
	return cm
}

// Accuracy returns the fraction of exact predictions.
func (cm ConfusionMatrix) Accuracy() float64 {
	if cm.Total == 0 {
		return 0
	}
	return float64(cm.Correct) / float64(cm.Total)
}

// Precision returns the precision of one class: correct positive
// predictions over all positive predictions (0 if the class was never
// predicted).
func (cm ConfusionMatrix) Precision(class int) float64 {
	predicted := 0
	for t := range cm.Counts {
		predicted += cm.Counts[t][class]
	}
	if predicted == 0 {
		return 0
	}
	return float64(cm.Counts[class][class]) / float64(predicted)
}

// Recall returns the recall of one class: correct positive predictions over
// all true members (0 for an absent class).
func (cm ConfusionMatrix) Recall(class int) float64 {
	actual := 0
	for _, v := range cm.Counts[class] {
		actual += v
	}
	if actual == 0 {
		return 0
	}
	return float64(cm.Counts[class][class]) / float64(actual)
}

// MacroF1 returns the unweighted mean F1 over classes that appear in the
// data.
func (cm ConfusionMatrix) MacroF1() float64 {
	sum, n := 0.0, 0
	for class := range cm.Counts {
		actual := 0
		for _, v := range cm.Counts[class] {
			actual += v
		}
		if actual == 0 {
			continue
		}
		p := cm.Precision(class)
		r := cm.Recall(class)
		if p+r > 0 {
			sum += 2 * p * r / (p + r)
		}
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Format renders the matrix with per-class precision/recall.
func (cm ConfusionMatrix) Format(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "true\\pred")
	for p := range cm.Counts {
		fmt.Fprintf(tw, "\t%d", p)
	}
	fmt.Fprintln(tw, "\trecall")
	for t, row := range cm.Counts {
		fmt.Fprintf(tw, "%d", t)
		for _, v := range row {
			fmt.Fprintf(tw, "\t%d", v)
		}
		fmt.Fprintf(tw, "\t%.2f\n", cm.Recall(t))
	}
	fmt.Fprint(tw, "precision")
	for p := range cm.Counts {
		fmt.Fprintf(tw, "\t%.2f", cm.Precision(p))
	}
	fmt.Fprintln(tw)
	tw.Flush()
	fmt.Fprintf(w, "accuracy %.3f, macro-F1 %.3f over %d points\n", cm.Accuracy(), cm.MacroF1(), cm.Total)
}
