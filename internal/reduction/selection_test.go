package reduction

import (
	"testing"

	"repro/internal/dataset/synthetic"
	"repro/internal/linalg"
)

func fittedWithCoherence(t *testing.T) *PCA {
	t.Helper()
	ds := synthetic.IonosphereLike(5)
	p, err := Fit(ds.X, Options{Scaling: ScalingStudentize, ComputeCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func isPermutationPrefixFree(idx []int, d int) bool {
	if len(idx) != d {
		return false
	}
	seen := make([]bool, d)
	for _, i := range idx {
		if i < 0 || i >= d || seen[i] {
			return false
		}
		seen[i] = true
	}
	return true
}

func TestOrderByEigenvalue(t *testing.T) {
	p := fittedWithCoherence(t)
	order := p.Order(ByEigenvalue)
	if !isPermutationPrefixFree(order, p.Dims()) {
		t.Fatalf("not a permutation: %v", order)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("eigenvalue order should be identity (components stored descending), got %v", order)
		}
	}
}

func TestOrderByCoherence(t *testing.T) {
	p := fittedWithCoherence(t)
	order := p.Order(ByCoherence)
	if !isPermutationPrefixFree(order, p.Dims()) {
		t.Fatalf("not a permutation: %v", order)
	}
	for i := 1; i < len(order); i++ {
		if p.Coherence[order[i]] > p.Coherence[order[i-1]]+1e-15 {
			t.Fatalf("coherence order not descending at %d", i)
		}
	}
}

func TestOrderByCoherenceWithoutCoherencePanics(t *testing.T) {
	ds := synthetic.UniformCube("u", 20, 3, 1)
	p, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	p.Order(ByCoherence)
}

func TestOrderingString(t *testing.T) {
	if ByEigenvalue.String() != "eigenvalue" || ByCoherence.String() != "coherence" {
		t.Fatalf("Ordering.String wrong")
	}
	if Ordering(7).String() == "" {
		t.Fatalf("unknown ordering must render")
	}
}

func TestTopK(t *testing.T) {
	p := fittedWithCoherence(t)
	top3 := p.TopK(ByEigenvalue, 3)
	if len(top3) != 3 || top3[0] != 0 || top3[2] != 2 {
		t.Fatalf("TopK = %v", top3)
	}
	for _, k := range []int{0, -1, p.Dims() + 1} {
		k := k
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("TopK(%d) must panic", k)
				}
			}()
			p.TopK(ByEigenvalue, k)
		}()
	}
}

func TestThresholdEigenvalue(t *testing.T) {
	p := &PCA{
		Mean:        make([]float64, 4),
		Eigenvalues: []float64{10, 5, 0.9, 0.1},
		Components:  linalg.Identity(4),
	}
	// Cut at 10% of 10 = 1.0: keeps 10 and 5, discards 0.9 and 0.1.
	if got := p.ThresholdEigenvalue(0.10); len(got) != 2 {
		t.Fatalf("10%% threshold kept %v", got)
	}
	// Cut at 0.5: keeps 10, 5, 0.9.
	if got := p.ThresholdEigenvalue(0.05); len(got) != 3 {
		t.Fatalf("5%% threshold kept %v", got)
	}
	if got := p.ThresholdEigenvalue(0.01); len(got) != 4 {
		t.Fatalf("1%% threshold kept %v", got)
	}
	// Cut at 0.6*10 = 6: only the top component survives.
	if got := p.ThresholdEigenvalue(0.60); len(got) != 1 {
		t.Fatalf("60%% threshold kept %v", got)
	}
	// Cut at 0.5*10 = 5: the 5 is kept (>= comparison).
	if got := p.ThresholdEigenvalue(0.50); len(got) != 2 {
		t.Fatalf("50%% threshold kept %v", got)
	}
	// frac=1 keeps only ties with the max.
	if got := p.ThresholdEigenvalue(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("100%% threshold kept %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("bad frac must panic")
		}
	}()
	p.ThresholdEigenvalue(1.5)
}

func TestEnergyTarget(t *testing.T) {
	p := &PCA{
		Mean:        make([]float64, 4),
		Eigenvalues: []float64{6, 2, 1, 1},
		Components:  linalg.Identity(4),
	}
	if got := p.EnergyTarget(0.5); len(got) != 1 {
		t.Fatalf("50%% energy = %v", got)
	}
	if got := p.EnergyTarget(0.8); len(got) != 2 {
		t.Fatalf("80%% energy = %v", got)
	}
	if got := p.EnergyTarget(1.0); len(got) != 4 {
		t.Fatalf("100%% energy = %v", got)
	}
	if got := p.EnergyFraction([]int{0, 1}); got != 0.8 {
		t.Fatalf("EnergyFraction = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("bad frac must panic")
		}
	}()
	p.EnergyTarget(0)
}

func TestCoherenceFloor(t *testing.T) {
	p := &PCA{
		Mean:        make([]float64, 4),
		Eigenvalues: []float64{4, 3, 2, 1},
		Components:  linalg.Identity(4),
		Coherence:   []float64{0.2, 0.9, 0.95, 0.3},
	}
	got := p.CoherenceFloor(0.5)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("CoherenceFloor = %v", got)
	}
	// Nothing above the floor: the single most coherent survives.
	if got := p.CoherenceFloor(0.99); len(got) != 1 || got[0] != 2 {
		t.Fatalf("CoherenceFloor fallback = %v", got)
	}
}

func TestGapCutoff(t *testing.T) {
	// Largest multiplicative gap after position 3.
	desc := []float64{100, 90, 80, 2, 1.5, 1}
	if got := GapCutoff(desc, 1, len(desc)); got != 3 {
		t.Fatalf("GapCutoff = %d, want 3", got)
	}
	// Bounds respected.
	if got := GapCutoff(desc, 4, len(desc)); got < 4 {
		t.Fatalf("minKeep violated: %d", got)
	}
	if got := GapCutoff(desc, 1, 2); got > 2 {
		t.Fatalf("maxKeep violated: %d", got)
	}
	// Flat sequence: no distinguished gap, returns maxKeep.
	flat := []float64{1, 1, 1, 1}
	if got := GapCutoff(flat, 1, 4); got != 1 {
		// All gaps are equal (ratio 1); the first index wins.
		t.Fatalf("flat GapCutoff = %d", got)
	}
	// Zeros do not divide by zero.
	withZeros := []float64{5, 0, 0}
	if got := GapCutoff(withZeros, 1, 3); got != 1 {
		t.Fatalf("zeros GapCutoff = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("empty must panic")
		}
	}()
	GapCutoff(nil, 1, 1)
}

func TestThresholdCloseToFullDimensionality(t *testing.T) {
	// The paper's Table 1 observation: on real-shaped data a small
	// threshold keeps nearly all dimensions, while coherent concepts are
	// far fewer. Our analogue: 1%-thresholding keeps many more components
	// than the concept count.
	ds := synthetic.MuskLike(2)
	p, err := Fit(ds.X, Options{Scaling: ScalingStudentize})
	if err != nil {
		t.Fatal(err)
	}
	kept := p.ThresholdEigenvalue(0.01)
	if len(kept) < ds.Dims()/2 {
		t.Fatalf("1%%-threshold kept only %d of %d", len(kept), ds.Dims())
	}
	// ... while the concept structure is an order of magnitude smaller.
	if aggressive := p.ThresholdEigenvalue(0.10); len(aggressive) >= len(kept)/2 {
		t.Fatalf("10%%-threshold kept %d, not clearly more aggressive than 1%%'s %d", len(aggressive), len(kept))
	}
}
