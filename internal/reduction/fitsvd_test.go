package reduction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset/synthetic"
	"repro/internal/linalg"
)

func TestFitSVDMatchesFit(t *testing.T) {
	ds := synthetic.IonosphereLike(4)
	for _, sc := range []Scaling{ScalingNone, ScalingStudentize} {
		eig, err := Fit(ds.X, Options{Scaling: sc, ComputeCoherence: true})
		if err != nil {
			t.Fatal(err)
		}
		svd, err := FitSVD(ds.X, Options{Scaling: sc, ComputeCoherence: true})
		if err != nil {
			t.Fatal(err)
		}
		if !linalg.VecEqual(eig.Eigenvalues, svd.Eigenvalues, 1e-7) {
			t.Fatalf("%v: eigenvalues diverge", sc)
		}
		// Components agree up to sign: check via point projections and
		// coherence values (both sign-invariant).
		if !linalg.VecEqual(eig.Coherence, svd.Coherence, 1e-7) {
			t.Fatalf("%v: coherence diverges", sc)
		}
		pt := ds.X.Row(5)
		a := eig.TransformPoint(pt, []int{0, 1, 2})
		b := svd.TransformPoint(pt, []int{0, 1, 2})
		for i := range a {
			if math.Abs(math.Abs(a[i])-math.Abs(b[i])) > 1e-7 {
				t.Fatalf("%v: projection %d diverges: %v vs %v", sc, i, a[i], b[i])
			}
		}
	}
}

func TestFitSVDWideMatrix(t *testing.T) {
	// n < d: the SVD path must complete the basis to a full rotation.
	rng := rand.New(rand.NewSource(9))
	x := linalg.NewDense(12, 30)
	for i := 0; i < 12; i++ {
		for j := 0; j < 30; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	p, err := FitSVD(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Components.Cols() != 30 || len(p.Eigenvalues) != 30 {
		t.Fatalf("incomplete basis: %d cols, %d values", p.Components.Cols(), len(p.Eigenvalues))
	}
	// Full orthonormal rotation.
	if !p.Components.T().Mul(p.Components).Equal(linalg.Identity(30), 1e-8) {
		t.Fatalf("completed basis not orthonormal")
	}
	// At most n−1 nonzero eigenvalues; the completion carries none.
	for i := 12; i < 30; i++ {
		if p.Eigenvalues[i] > 1e-9 {
			t.Fatalf("completed component %d has eigenvalue %v", i, p.Eigenvalues[i])
		}
	}
	// Full-rank round trip still works.
	all := make([]int, 30)
	for i := range all {
		all[i] = i
	}
	pt := x.Row(3)
	back := p.InverseTransformPoint(p.TransformPoint(pt, all), all)
	if !linalg.VecEqual(back, pt, 1e-8) {
		t.Fatalf("wide-matrix round trip failed")
	}
}

func TestFitSVDValidation(t *testing.T) {
	if _, err := FitSVD(linalg.NewDense(1, 3), Options{}); err == nil {
		t.Fatalf("single point accepted")
	}
	if _, err := FitSVD(linalg.NewDense(5, 3), Options{Scaling: Scaling(9)}); err == nil {
		t.Fatalf("bogus scaling accepted")
	}
}

func TestFitTopKMatchesFullPrefix(t *testing.T) {
	ds := synthetic.ArrhythmiaLike(2)
	full, err := Fit(ds.X, Options{Scaling: ScalingStudentize})
	if err != nil {
		t.Fatal(err)
	}
	part, err := FitTopK(ds.X, 10, Options{Scaling: ScalingStudentize}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Eigenvalues) != 10 {
		t.Fatalf("eigenvalue count %d", len(part.Eigenvalues))
	}
	if !linalg.VecEqual(part.Eigenvalues, full.Eigenvalues[:10], 1e-5) {
		t.Fatalf("partial eigenvalues diverge:\n%v\n%v", part.Eigenvalues, full.Eigenvalues[:10])
	}
	// Projections agree up to sign.
	pt := ds.X.Row(9)
	a := part.TransformPoint(pt, []int{0, 1, 2})
	b := full.TransformPoint(pt, []int{0, 1, 2})
	for i := range a {
		if math.Abs(math.Abs(a[i])-math.Abs(b[i])) > 1e-4*(1+math.Abs(b[i])) {
			t.Fatalf("projection %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFitTopKWithCoherence(t *testing.T) {
	ds := synthetic.IonosphereLike(3)
	p, err := FitTopK(ds.X, 6, Options{Scaling: ScalingStudentize, ComputeCoherence: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Coherence) != 6 {
		t.Fatalf("coherence count %d", len(p.Coherence))
	}
	// Coherence-ordered selection works over the partial basis.
	order := p.Order(ByCoherence)
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	red := p.Transform(ds.X, p.TopK(ByCoherence, 3))
	if red.Cols() != 3 {
		t.Fatalf("reduced dims %d", red.Cols())
	}
}

func TestFitTopKValidation(t *testing.T) {
	x := linalg.NewDense(10, 4)
	if _, err := FitTopK(x, 0, Options{}, 1); err == nil {
		t.Fatalf("k=0 accepted")
	}
	if _, err := FitTopK(x, 5, Options{}, 1); err == nil {
		t.Fatalf("k>d accepted")
	}
	if _, err := FitTopK(linalg.NewDense(1, 4), 2, Options{}, 1); err == nil {
		t.Fatalf("single point accepted")
	}
	if _, err := FitTopK(x, 2, Options{Scaling: Scaling(9)}, 1); err == nil {
		t.Fatalf("bogus scaling accepted")
	}
}

func TestCompleteBasisWithSpannedAxes(t *testing.T) {
	// A partial basis that already contains standard axes forces the
	// completion to skip spanned candidates.
	v := linalg.NewDense(4, 2)
	v.Set(0, 0, 1) // e0
	v.Set(1, 1, 1) // e1
	out := completeBasis(v, 4)
	if out.Cols() != 4 {
		t.Fatalf("cols = %d", out.Cols())
	}
	if !out.T().Mul(out).Equal(linalg.Identity(4), 1e-10) {
		t.Fatalf("completed basis not orthonormal")
	}
}

func TestEnergyTargetZeroVarianceAndFullTail(t *testing.T) {
	// All-zero eigenvalues: degenerate transform keeps one component.
	p := &PCA{
		Mean:        make([]float64, 3),
		Eigenvalues: []float64{0, 0, 0},
		Components:  linalg.Identity(3),
	}
	if got := p.EnergyTarget(0.5); len(got) != 1 || got[0] != 0 {
		t.Fatalf("zero-variance EnergyTarget = %v", got)
	}
	// Floating-point shortfall: requesting slightly more than the
	// accumulated fraction returns everything.
	p2 := &PCA{
		Mean:        make([]float64, 2),
		Eigenvalues: []float64{1, 1},
		Components:  linalg.Identity(2),
	}
	if got := p2.EnergyTarget(1.0); len(got) != 2 {
		t.Fatalf("full EnergyTarget = %v", got)
	}
}
