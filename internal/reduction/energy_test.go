package reduction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset/synthetic"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// axisBasis builds the d×k orthonormal basis whose columns are the given
// coordinate axes.
func axisBasis(d int, axes ...int) *linalg.Dense {
	b := linalg.NewDense(d, len(axes))
	for j, a := range axes {
		b.RawRow(a)[j] = 1
	}
	return b
}

func TestAccumulateMatrixMatchesAddMatrix(t *testing.T) {
	ds := synthetic.UniformCube("u", 250, 9, 3)
	bulk := AccumulateMatrix(ds.X)
	inc := NewCovarianceAccumulator(9)
	inc.AddMatrix(ds.X)
	if bulk.N() != inc.N() || bulk.Dims() != inc.Dims() {
		t.Fatalf("bulk N/Dims = %d/%d, incremental %d/%d", bulk.N(), bulk.Dims(), inc.N(), inc.Dims())
	}
	if !linalg.VecEqual(bulk.Mean(), stats.ColumnMeans(ds.X), 1e-12) {
		t.Fatal("bulk-seeded mean diverges from column means")
	}
	if !bulk.Covariance().Equal(inc.Covariance(), 1e-10) {
		t.Fatal("bulk-seeded covariance diverges from incremental accumulation")
	}
}

// TestCapturedEnergyAxisData pins the quantity against data whose variance
// is overwhelmingly on one coordinate axis: the matching one-axis basis
// captures nearly everything, the orthogonal one nearly nothing, and the
// complete basis exactly everything.
func TestCapturedEnergyAxisData(t *testing.T) {
	const n, d = 400, 6
	rng := rand.New(rand.NewSource(5))
	x := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		row[0] = rng.NormFloat64() * 10
		for j := 1; j < d; j++ {
			row[j] = rng.NormFloat64() * 0.01
		}
	}
	a := AccumulateMatrix(x)
	if f := a.CapturedEnergy(axisBasis(d, 0)); f < 0.999 {
		t.Fatalf("dominant-axis basis captures %v, want > 0.999", f)
	}
	if f := a.CapturedEnergy(axisBasis(d, 1)); f > 0.001 {
		t.Fatalf("orthogonal basis captures %v, want < 0.001", f)
	}
	all := make([]int, d)
	for i := range all {
		all[i] = i
	}
	if f := a.CapturedEnergy(axisBasis(d, all...)); math.Abs(f-1) > 1e-9 {
		t.Fatalf("complete basis captures %v, want 1", f)
	}
}

// TestCapturedEnergyDecaysUnderDrift is the serving-layer premise: a basis
// frozen on the initial distribution loses captured energy as streaming
// updates rotate the principal subspace.
func TestCapturedEnergyDecaysUnderDrift(t *testing.T) {
	const n, d = 300, 5
	rng := rand.New(rand.NewSource(7))
	x := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		row[0] = rng.NormFloat64() * 5
		for j := 1; j < d; j++ {
			row[j] = rng.NormFloat64() * 0.01
		}
	}
	a := AccumulateMatrix(x)
	p, err := a.FitPCA()
	if err != nil {
		t.Fatal(err)
	}
	basis := p.Components.SliceCols([]int{0})
	before := a.CapturedEnergy(basis)
	if before < 0.99 {
		t.Fatalf("at-freeze energy %v, want near 1", before)
	}
	vec := make([]float64, d)
	for i := 0; i < 2*n; i++ {
		for j := range vec {
			vec[j] = rng.NormFloat64() * 0.01
		}
		vec[2] = rng.NormFloat64() * 5
		a.Add(vec)
	}
	after := a.CapturedEnergy(basis)
	if after >= before {
		t.Fatalf("energy did not decay: before %v, after %v", before, after)
	}
	if after > 0.8*before {
		t.Fatalf("drifted energy %v decayed too little from %v", after, before)
	}
}

func TestCapturedEnergyPanicsOnShape(t *testing.T) {
	a := AccumulateMatrix(synthetic.UniformCube("u", 50, 4, 1).X)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched basis rows")
		}
	}()
	a.CapturedEnergy(linalg.NewDense(5, 2))
}
