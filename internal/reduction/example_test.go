package reduction_test

import (
	"fmt"

	"repro/internal/dataset/synthetic"
	"repro/internal/reduction"
)

// Fitting with coherence analysis and selecting by the paper's rule.
func ExampleFit() {
	ds := synthetic.IonosphereLike(1)
	p, err := reduction.Fit(ds.X, reduction.Options{
		Scaling:          reduction.ScalingStudentize,
		ComputeCoherence: true,
	})
	if err != nil {
		panic(err)
	}
	top := p.TopK(reduction.ByCoherence, 3)
	reduced := p.Transform(ds.X, top)
	fmt.Printf("%d points reduced to %d coherent dims\n", reduced.Rows(), reduced.Cols())
	// Output: 351 points reduced to 3 coherent dims
}

// The streaming accumulator refits without re-reading old points.
func ExampleCovarianceAccumulator() {
	ds := synthetic.UniformCube("stream", 200, 6, 1)
	acc := reduction.NewCovarianceAccumulator(ds.Dims())
	acc.AddMatrix(ds.X)
	p, err := acc.FitPCA()
	if err != nil {
		panic(err)
	}
	fmt.Printf("n=%d components=%d\n", acc.N(), len(p.Eigenvalues))
	// Output: n=200 components=6
}
