package reduction

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// FitSVD computes the same transform as Fit but via the singular value
// decomposition of the normalized data matrix instead of eigendecomposing
// the covariance matrix. Working on the data matrix directly avoids the
// squared condition number of forming XᵀX, which matters when the leading
// eigenvalues span many orders of magnitude. Eigenvalues are σᵢ²/n.
//
// The SVD path materializes only min(n, d) components; for n >= d this is
// the full transform, for n < d the trailing (d − n) components have zero
// variance anyway and are reconstructed as an arbitrary orthonormal
// completion so the PCA remains a full rotation.
func FitSVD(x *linalg.Dense, opts Options) (*PCA, error) {
	n, d := x.Dims()
	if n < 2 {
		return nil, fmt.Errorf("reduction: FitSVD requires >= 2 points, got %d", n)
	}
	var work *linalg.Dense
	p := &PCA{Scaling: opts.Scaling}
	switch opts.Scaling {
	case ScalingNone:
		work, p.Mean = stats.Center(x)
		p.Scale = make([]float64, d)
		for j := range p.Scale {
			p.Scale[j] = 1
		}
	case ScalingStudentize:
		work, p.Mean, p.Scale = stats.Standardize(x, 1e-12)
	default:
		return nil, fmt.Errorf("reduction: unknown scaling %d", int(opts.Scaling))
	}

	sd, err := linalg.SVD(work)
	if err != nil {
		return nil, fmt.Errorf("reduction: svd failed: %w", err)
	}
	r := len(sd.Values)
	p.Eigenvalues = make([]float64, d)
	for i := 0; i < r && i < d; i++ {
		p.Eigenvalues[i] = sd.Values[i] * sd.Values[i] / float64(n)
	}
	if r >= d {
		p.Components = sd.V
	} else {
		// Complete V's columns to a full orthonormal basis of R^d.
		p.Components = completeBasis(sd.V, d)
	}

	if opts.ComputeCoherence {
		ba := core.AnalyzeBasis(work, p.Components, false)
		p.Coherence = ba.Coherences()
		p.MeanFactor = make([]float64, len(ba.Reports))
		for i, rep := range ba.Reports {
			p.MeanFactor[i] = rep.MeanFactor
		}
	}
	return p, nil
}

// completeBasis extends the orthonormal columns of v (d x r, r < d) to a
// d x d orthonormal matrix, deterministically.
func completeBasis(v *linalg.Dense, d int) *linalg.Dense {
	r := v.Cols()
	out := linalg.NewDense(d, d)
	for j := 0; j < r; j++ {
		out.SetCol(j, v.Col(j))
	}
	// Orthogonalize standard basis vectors against everything chosen so
	// far, using a deterministic perturbation stream for degenerate cases.
	//drlint:ignore globalrand the fixed stream is the function's documented determinism contract: completeBasis must return the same basis on every call
	rng := rand.New(rand.NewSource(1))
	col := r
	for e := 0; e < d && col < d; e++ {
		cand := make([]float64, d)
		cand[e] = 1
		for pass := 0; pass < 2; pass++ {
			for j := 0; j < col; j++ {
				u := out.Col(j)
				linalg.Axpy(-linalg.Dot(u, cand), u, cand)
			}
		}
		if linalg.Norm2(cand) < 1e-8 {
			continue // e_j already spanned; try the next axis
		}
		linalg.Normalize(cand)
		out.SetCol(col, cand)
		col++
	}
	// Extremely unlikely fallback: random vectors until the basis is full.
	for col < d {
		cand := make([]float64, d)
		for i := range cand {
			cand[i] = rng.NormFloat64()
		}
		for pass := 0; pass < 2; pass++ {
			for j := 0; j < col; j++ {
				u := out.Col(j)
				linalg.Axpy(-linalg.Dot(u, cand), u, cand)
			}
		}
		if linalg.Norm2(cand) < 1e-8 {
			continue
		}
		linalg.Normalize(cand)
		out.SetCol(col, cand)
		col++
	}
	return out
}

// FitTopK computes only the k leading principal components with the Lanczos
// partial eigensolver — the economical path when d is large and only an
// aggressive reduction is wanted. The returned PCA holds exactly k
// components; orderings and selection rules operate on those k, and
// TotalVariance/EnergyFraction are relative to the captured k-component
// variance rather than the full trace. Coherence is computed for the k
// components when requested.
func FitTopK(x *linalg.Dense, k int, opts Options, seed int64) (*PCA, error) {
	n, d := x.Dims()
	if n < 2 {
		return nil, fmt.Errorf("reduction: FitTopK requires >= 2 points, got %d", n)
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("reduction: FitTopK k=%d out of [1,%d]", k, d)
	}
	var work *linalg.Dense
	p := &PCA{Scaling: opts.Scaling}
	switch opts.Scaling {
	case ScalingNone:
		work, p.Mean = stats.Center(x)
		p.Scale = make([]float64, d)
		for j := range p.Scale {
			p.Scale[j] = 1
		}
	case ScalingStudentize:
		work, p.Mean, p.Scale = stats.Standardize(x, 1e-12)
	default:
		return nil, fmt.Errorf("reduction: unknown scaling %d", int(opts.Scaling))
	}
	cov := stats.CovarianceMatrix(work)
	vals, vecs, err := linalg.TopKEigen(cov, k, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("reduction: partial eigendecomposition: %w", err)
	}
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	p.Eigenvalues = vals
	p.Components = vecs
	if opts.ComputeCoherence {
		ba := core.AnalyzeBasis(work, vecs, false)
		p.Coherence = ba.Coherences()
		p.MeanFactor = make([]float64, len(ba.Reports))
		for i, rep := range ba.Reports {
			p.MeanFactor[i] = rep.MeanFactor
		}
	}
	return p, nil
}
