package reduction

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset/synthetic"
	"repro/internal/linalg"
	"repro/internal/stats"
)

func TestAccumulatorMatchesBatchCovariance(t *testing.T) {
	ds := synthetic.UniformCube("u", 300, 8, 1)
	acc := NewCovarianceAccumulator(8)
	acc.AddMatrix(ds.X)
	if acc.N() != 300 || acc.Dims() != 8 {
		t.Fatalf("N/Dims = %d/%d", acc.N(), acc.Dims())
	}
	if !linalg.VecEqual(acc.Mean(), stats.ColumnMeans(ds.X), 1e-12) {
		t.Fatalf("streaming mean diverges")
	}
	if !acc.Covariance().Equal(stats.CovarianceMatrix(ds.X), 1e-10) {
		t.Fatalf("streaming covariance diverges from batch")
	}
}

func TestAccumulatorFitMatchesBatchFit(t *testing.T) {
	ds := synthetic.IonosphereLike(2)
	acc := NewCovarianceAccumulator(ds.Dims())
	acc.AddMatrix(ds.X)
	sp, err := acc.FitPCA()
	if err != nil {
		t.Fatal(err)
	}
	bp, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.VecEqual(sp.Eigenvalues, bp.Eigenvalues, 1e-7) {
		t.Fatalf("eigenvalues diverge:\nstream %v\nbatch  %v", sp.Eigenvalues[:5], bp.Eigenvalues[:5])
	}
	// Components may differ by sign; compare projections of a point.
	pt := ds.X.Row(3)
	comps := []int{0, 1, 2}
	a := sp.TransformPoint(pt, comps)
	b := bp.TransformPoint(pt, comps)
	for i := range a {
		if math.Abs(math.Abs(a[i])-math.Abs(b[i])) > 1e-7 {
			t.Fatalf("projection %d: |%v| vs |%v|", i, a[i], b[i])
		}
	}
}

func TestAccumulatorRemoveUndoesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	acc := NewCovarianceAccumulator(5)
	keep := linalg.NewDense(40, 5)
	for i := 0; i < 40; i++ {
		for j := 0; j < 5; j++ {
			keep.Set(i, j, rng.NormFloat64())
		}
	}
	acc.AddMatrix(keep)
	// Add then remove a batch of extra points.
	extras := make([][]float64, 15)
	for e := range extras {
		p := make([]float64, 5)
		for j := range p {
			p[j] = rng.NormFloat64() * 10
		}
		extras[e] = p
		acc.Add(p)
	}
	for _, p := range extras {
		acc.Remove(p)
	}
	if acc.N() != 40 {
		t.Fatalf("N = %d after add/remove", acc.N())
	}
	if !acc.Covariance().Equal(stats.CovarianceMatrix(keep), 1e-8) {
		t.Fatalf("remove did not restore covariance")
	}
}

func TestAccumulatorMergeMatchesSingle(t *testing.T) {
	ds := synthetic.UniformCube("u", 200, 6, 7)
	whole := NewCovarianceAccumulator(6)
	whole.AddMatrix(ds.X)
	a := NewCovarianceAccumulator(6)
	b := NewCovarianceAccumulator(6)
	for i := 0; i < ds.N(); i++ {
		if i%3 == 0 {
			a.Add(ds.X.RawRow(i))
		} else {
			b.Add(ds.X.RawRow(i))
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if !a.Covariance().Equal(whole.Covariance(), 1e-10) {
		t.Fatalf("merged covariance diverges")
	}
}

func TestAccumulatorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero dims":    func() { NewCovarianceAccumulator(0) },
		"bad add":      func() { NewCovarianceAccumulator(3).Add([]float64{1}) },
		"empty remove": func() { NewCovarianceAccumulator(3).Remove([]float64{1, 2, 3}) },
		"empty mean":   func() { NewCovarianceAccumulator(3).Mean() },
		"single cov": func() {
			a := NewCovarianceAccumulator(2)
			a.Add([]float64{1, 2})
			a.Covariance()
		},
		"merge mismatch": func() {
			NewCovarianceAccumulator(2).Merge(NewCovarianceAccumulator(3))
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestAccumulatorIncrementalRefreshProperty(t *testing.T) {
	// Property: after any prefix of a stream, the accumulator covariance
	// equals the batch covariance of that prefix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		d := 1 + rng.Intn(5)
		x := linalg.NewDense(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				x.Set(i, j, rng.NormFloat64())
			}
		}
		acc := NewCovarianceAccumulator(d)
		for i := 0; i < n; i++ {
			acc.Add(x.RawRow(i))
			if i >= 1 {
				rows := make([]int, i+1)
				for r := range rows {
					rows[r] = r
				}
				prefix := x.SliceRows(rows)
				if !acc.Covariance().Equal(stats.CovarianceMatrix(prefix), 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingDynamicDatabaseScenario(t *testing.T) {
	// End-to-end dynamic-database flow: ingest in two partitions, merge,
	// fit, then verify reduced-space quality matches the batch pipeline.
	ds := synthetic.MuskLike(3)
	half := ds.N() / 2
	first := make([]int, half)
	second := make([]int, ds.N()-half)
	for i := range first {
		first[i] = i
	}
	for i := range second {
		second[i] = half + i
	}
	a := NewCovarianceAccumulator(ds.Dims())
	a.AddMatrix(ds.X.SliceRows(first))
	b := NewCovarianceAccumulator(ds.Dims())
	b.AddMatrix(ds.X.SliceRows(second))
	a.Merge(b)
	sp, err := a.FitPCA()
	if err != nil {
		t.Fatal(err)
	}
	bp, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr := sp.Transform(ds.X, sp.TopK(ByEigenvalue, 13))
	br := bp.Transform(ds.X, bp.TopK(ByEigenvalue, 13))
	// Same subspace up to rotation/sign: pairwise distances must agree.
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			ds1 := linalg.Dist2(sr.RawRow(i), sr.RawRow(j))
			ds2 := linalg.Dist2(br.RawRow(i), br.RawRow(j))
			if math.Abs(ds1-ds2) > 1e-6*(1+ds1) {
				t.Fatalf("reduced distances diverge: %v vs %v", ds1, ds2)
			}
		}
	}
}
