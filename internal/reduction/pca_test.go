package reduction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dataset/synthetic"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// anisotropic2D returns points stretched along a known direction so the top
// principal component is predictable.
func anisotropic2D(n int, seed int64) *linalg.Dense {
	rng := rand.New(rand.NewSource(seed))
	x := linalg.NewDense(n, 2)
	for i := 0; i < n; i++ {
		t := rng.NormFloat64() * 10 // along (1,1)/√2
		s := rng.NormFloat64() * 1  // along (1,-1)/√2
		x.Set(i, 0, (t+s)/math.Sqrt2+3)
		x.Set(i, 1, (t-s)/math.Sqrt2-5)
	}
	return x
}

func TestFitRecoversKnownDirection(t *testing.T) {
	x := anisotropic2D(2000, 1)
	p, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Eigenvalues) != 2 {
		t.Fatalf("eigenvalues = %v", p.Eigenvalues)
	}
	// Variances ~100 and ~1.
	if p.Eigenvalues[0] < 80 || p.Eigenvalues[0] > 120 {
		t.Fatalf("top eigenvalue = %v", p.Eigenvalues[0])
	}
	if p.Eigenvalues[1] < 0.8 || p.Eigenvalues[1] > 1.2 {
		t.Fatalf("second eigenvalue = %v", p.Eigenvalues[1])
	}
	// Top component ~ ±(1,1)/√2.
	c := p.Components.Col(0)
	if math.Abs(math.Abs(c[0])-1/math.Sqrt2) > 0.02 || math.Abs(c[0]-c[1]) > 0.04 {
		t.Fatalf("top component = %v", c)
	}
	// Mean recovered.
	if math.Abs(p.Mean[0]-3) > 0.5 || math.Abs(p.Mean[1]+5) > 0.5 {
		t.Fatalf("mean = %v", p.Mean)
	}
}

func TestFitRejectsTooFewPoints(t *testing.T) {
	if _, err := Fit(linalg.NewDense(1, 3), Options{}); err == nil {
		t.Fatalf("expected error for single point")
	}
}

func TestFitRejectsUnknownScaling(t *testing.T) {
	if _, err := Fit(linalg.NewDense(5, 2), Options{Scaling: Scaling(99)}); err == nil {
		t.Fatalf("expected error for bogus scaling")
	}
}

func TestEigenvaluesDescendingAndNonNegative(t *testing.T) {
	ds := synthetic.IonosphereLike(3)
	for _, sc := range []Scaling{ScalingNone, ScalingStudentize} {
		p, err := Fit(ds.X, Options{Scaling: sc})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range p.Eigenvalues {
			if v < 0 {
				t.Fatalf("%v: negative eigenvalue %v", sc, v)
			}
			if i > 0 && v > p.Eigenvalues[i-1]+1e-12 {
				t.Fatalf("%v: eigenvalues not descending", sc)
			}
		}
	}
}

func TestStudentizedEigenvalueSumEqualsDims(t *testing.T) {
	// Correlation-matrix PCA: total variance equals the number of
	// (non-constant) dimensions.
	ds := synthetic.IonosphereLike(4)
	p, err := Fit(ds.X, Options{Scaling: ScalingStudentize})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.TotalVariance(); math.Abs(got-float64(ds.Dims())) > 1e-6 {
		t.Fatalf("studentized total variance = %v, want %d", got, ds.Dims())
	}
}

func TestCovarianceTraceEqualsEigenvalueSum(t *testing.T) {
	ds := synthetic.UniformCube("u", 300, 10, 5)
	p, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	trace := 0.0
	for _, v := range stats.ColumnVariances(ds.X) {
		trace += v
	}
	if math.Abs(p.TotalVariance()-trace) > 1e-9 {
		t.Fatalf("eigenvalue sum %v != variance trace %v", p.TotalVariance(), trace)
	}
}

func TestTransformAllIsIsometryOfNormalizedData(t *testing.T) {
	// Projection onto the full orthonormal basis preserves pairwise
	// Euclidean distances of the normalized data.
	ds := synthetic.UniformCube("u", 50, 6, 6)
	p, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	centered, _ := stats.Center(ds.X)
	rotated := p.TransformAll(ds.X)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			want := linalg.Dist2(centered.RawRow(i), centered.RawRow(j))
			got := linalg.Dist2(rotated.RawRow(i), rotated.RawRow(j))
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("distance (%d,%d) changed: %v vs %v", i, j, got, want)
			}
		}
	}
}

func TestTransformScoreVarianceMatchesEigenvalue(t *testing.T) {
	ds := synthetic.MuskLike(1)
	p, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scores := p.TransformAll(ds.X)
	vars := stats.ColumnVariances(scores)
	for i := 0; i < 5; i++ {
		if rel := math.Abs(vars[i]-p.Eigenvalues[i]) / (1 + p.Eigenvalues[i]); rel > 1e-8 {
			t.Fatalf("score variance %v != eigenvalue %v at %d", vars[i], p.Eigenvalues[i], i)
		}
	}
	// Scores are uncorrelated (the paper: concepts show no second-order
	// correlations).
	corr := stats.CorrelationMatrix(scores.SliceCols([]int{0, 1, 2, 3}))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && math.Abs(corr.At(i, j)) > 1e-6 {
				t.Fatalf("scores correlated: r(%d,%d)=%v", i, j, corr.At(i, j))
			}
		}
	}
}

func TestTransformPointMatchesTransform(t *testing.T) {
	ds := synthetic.UniformCube("u", 30, 5, 8)
	p, err := Fit(ds.X, Options{Scaling: ScalingStudentize})
	if err != nil {
		t.Fatal(err)
	}
	comps := []int{0, 2, 4}
	m := p.Transform(ds.X, comps)
	for i := 0; i < ds.N(); i++ {
		single := p.TransformPoint(ds.X.Row(i), comps)
		if !linalg.VecEqual(single, m.Row(i), 1e-12) {
			t.Fatalf("row %d: TransformPoint disagrees with Transform", i)
		}
	}
}

func TestTransformPanics(t *testing.T) {
	ds := synthetic.UniformCube("u", 20, 4, 9)
	p, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"wrong dims point":  func() { p.TransformPoint([]float64{1, 2}, []int{0}) },
		"wrong dims matrix": func() { p.Transform(linalg.NewDense(3, 7), []int{0}) },
		"empty components":  func() { p.Transform(ds.X, nil) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestInverseTransformRoundTripFullRank(t *testing.T) {
	// With all components retained, inverse(transform(x)) == x.
	ds := synthetic.UniformCube("u", 40, 6, 10)
	for _, sc := range []Scaling{ScalingNone, ScalingStudentize} {
		p, err := Fit(ds.X, Options{Scaling: sc})
		if err != nil {
			t.Fatal(err)
		}
		all := make([]int, 6)
		for i := range all {
			all[i] = i
		}
		for i := 0; i < 5; i++ {
			orig := ds.X.Row(i)
			back := p.InverseTransformPoint(p.TransformPoint(orig, all), all)
			if !linalg.VecEqual(back, orig, 1e-9) {
				t.Fatalf("%v: round trip failed: %v vs %v", sc, back, orig)
			}
		}
	}
}

func TestInverseTransformTruncationError(t *testing.T) {
	// Truncated reconstruction error must equal the energy in the dropped
	// components (per point, in the normalized space this is the sum of
	// squared dropped scores).
	x := anisotropic2D(500, 11)
	p, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pt := x.Row(7)
	scores := p.TransformPoint(pt, []int{0, 1})
	back := p.InverseTransformPoint(scores[:1], []int{0})
	err2 := linalg.Dist2(back, pt)
	if math.Abs(err2-math.Abs(scores[1])) > 1e-9 {
		t.Fatalf("truncation error %v != dropped score %v", err2, math.Abs(scores[1]))
	}
}

func TestReduceDatasetPreservesLabels(t *testing.T) {
	ds := synthetic.IonosphereLike(7)
	p, err := Fit(ds.X, Options{ComputeCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	red := p.ReduceDataset(ds, p.TopK(ByEigenvalue, 5), "ion-5")
	if red.Dims() != 5 || red.N() != ds.N() {
		t.Fatalf("reduced shape %dx%d", red.N(), red.Dims())
	}
	for i := range red.Labels {
		if red.Labels[i] != ds.Labels[i] {
			t.Fatalf("labels changed at %d", i)
		}
	}
}

func TestFitDatasetMatchesFit(t *testing.T) {
	ds := synthetic.UniformCube("u", 25, 3, 2)
	a, err := FitDataset(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.VecEqual(a.Eigenvalues, b.Eigenvalues, 0) {
		t.Fatalf("FitDataset differs from Fit")
	}
}

func TestCoherenceComputedOnlyWhenRequested(t *testing.T) {
	ds := synthetic.UniformCube("u", 30, 4, 3)
	p, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Coherence != nil || p.MeanFactor != nil {
		t.Fatalf("coherence computed without request")
	}
	p2, err := Fit(ds.X, Options{ComputeCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Coherence) != 4 || len(p2.MeanFactor) != 4 {
		t.Fatalf("coherence missing: %v", p2.Coherence)
	}
	for _, c := range p2.Coherence {
		if c < 0 || c >= 1 {
			t.Fatalf("coherence out of range: %v", c)
		}
	}
}

func TestUniformCoherenceProfileIsFlat(t *testing.T) {
	// §3: for uniform data "the coherence probability is the same for each
	// and every vector, [so] all the dimensions have to be retained." The
	// closed-form value 2Φ(1)−1 ≈ 0.68 holds for axis-aligned vectors (see
	// core's TestDatasetCoherenceUniformData); sample PCA returns an
	// arbitrary rotation of the nearly-degenerate eigenbasis, so here we
	// assert the structural conclusion: a flat, modest coherence profile
	// with no component standing out.
	ds := synthetic.UniformCube("u", 2000, 12, 13)
	p, err := Fit(ds.X, Options{ComputeCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	min, max := p.Coherence[0], p.Coherence[0]
	for _, c := range p.Coherence {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 0.1 {
		t.Fatalf("uniform coherence profile not flat: spread %v (%v..%v)", max-min, min, max)
	}
	if mean := stats.Mean(p.Coherence); mean < 0.4 || mean > 0.75 {
		t.Fatalf("uniform coherence mean = %v, expected modest", mean)
	}
}

func TestScalingChangesBasisOnHeterogeneousData(t *testing.T) {
	// §2.2 / Figure 2: on data with wildly different per-dimension scales,
	// covariance-PCA and correlation-PCA produce different top components.
	ds := synthetic.MustGenerate(synthetic.LatentFactorConfig{
		Name: "scales", N: 300, Dims: 10, Classes: 2,
		ConceptStrengths: []float64{3, 2}, ClassSeparation: 1,
		NoiseStdDev: 0.5, ScaleSpread: 3, Seed: 21,
	})
	pn, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Fit(ds.X, Options{Scaling: ScalingStudentize})
	if err != nil {
		t.Fatal(err)
	}
	dot := math.Abs(linalg.Dot(pn.Components.Col(0), ps.Components.Col(0)))
	if dot > 0.99 {
		t.Fatalf("scaling had no effect on the top component (|dot|=%v)", dot)
	}
}

func TestScalingString(t *testing.T) {
	if ScalingNone.String() != "none" || ScalingStudentize.String() != "studentize" {
		t.Fatalf("Scaling.String wrong")
	}
	if Scaling(9).String() == "" {
		t.Fatalf("unknown scaling must still render")
	}
}

var _ = dataset.Dataset{} // keep import when test set shrinks
