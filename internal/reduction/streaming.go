package reduction

import (
	"fmt"

	"repro/internal/linalg"
)

// CovarianceAccumulator maintains the sufficient statistics of a data
// stream — count, per-dimension sums and the matrix of second moments — so
// the PCA of a growing (dynamic) database can be refreshed without
// re-reading old points. This is the maintenance strategy of the paper's
// reference [17] (Ravi Kanth, Agrawal & Singh, "Dimensionality Reduction
// for Similarity Search in Dynamic Databases", SIGMOD 1998): accumulate,
// and recompute the transform when enough change has built up.
//
// The accumulator supports point insertion, deletion (for sliding
// databases) and merging of independently-built accumulators (for
// partitioned ingest). All operations are O(d²) or better.
type CovarianceAccumulator struct {
	d     int
	n     int
	sum   []float64
	outer *linalg.Dense // Σ x xᵀ
}

// NewCovarianceAccumulator creates an accumulator for d-dimensional points.
func NewCovarianceAccumulator(d int) *CovarianceAccumulator {
	if d < 1 {
		panic(fmt.Sprintf("reduction: accumulator dims=%d", d))
	}
	return &CovarianceAccumulator{d: d, sum: make([]float64, d), outer: linalg.NewDense(d, d)}
}

// Dims returns the dimensionality.
func (a *CovarianceAccumulator) Dims() int { return a.d }

// N returns the number of points currently accounted for.
func (a *CovarianceAccumulator) N() int { return a.n }

// Add inserts a point.
func (a *CovarianceAccumulator) Add(x []float64) {
	a.update(x, 1)
}

// Remove deletes a previously inserted point. The caller is responsible for
// only removing points that were added; the accumulator cannot verify this.
func (a *CovarianceAccumulator) Remove(x []float64) {
	if a.n == 0 {
		panic("reduction: Remove from empty accumulator")
	}
	a.update(x, -1)
}

func (a *CovarianceAccumulator) update(x []float64, sign float64) {
	if len(x) != a.d {
		panic(fmt.Sprintf("reduction: point has %d dims, accumulator %d", len(x), a.d))
	}
	a.n += int(sign)
	for i, v := range x {
		a.sum[i] += sign * v
		if v == 0 {
			continue
		}
		row := a.outer.RawRow(i)
		for j, w := range x {
			row[j] += sign * v * w
		}
	}
}

// AddMatrix inserts every row of x.
func (a *CovarianceAccumulator) AddMatrix(x *linalg.Dense) {
	for i := 0; i < x.Rows(); i++ {
		a.Add(x.RawRow(i))
	}
}

// AccumulateMatrix builds an accumulator over every row of x using the
// blocked AtA kernel for the second-moment matrix instead of AddMatrix's
// O(n·d²) scalar updates — the bulk-seeding path for serving engines that
// start drift tracking over an existing snapshot. The statistics equal
// AddMatrix's up to floating-point summation order (AtA accumulates
// column-blocked with FMA where available), which is immaterial for the
// decay heuristics built on top.
func AccumulateMatrix(x *linalg.Dense) *CovarianceAccumulator {
	n, d := x.Dims()
	a := NewCovarianceAccumulator(d)
	if n == 0 {
		return a
	}
	a.n = n
	a.outer = linalg.AtA(x)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		for j, v := range row {
			a.sum[j] += v
		}
	}
	return a
}

// CapturedEnergy returns tr(BᵀCB)/tr(C): the fraction of the stream's
// current variance that lies inside the subspace spanned by the columns of
// basis (assumed orthonormal, e.g. leading PCA components). A basis fitted
// on a past snapshot captures its full energy target at fit time; as
// inserts and deletes drift the distribution, this fraction decays — the
// serving layer's online stand-in for the paper's P(D,e) loss-of-proximity
// lens, cheap enough (O(m·d²)) to evaluate periodically without touching
// the data. Returns 1 when the stream carries no variance. Requires at
// least 2 points.
func (a *CovarianceAccumulator) CapturedEnergy(basis *linalg.Dense) float64 {
	if basis.Rows() != a.d {
		panic(fmt.Sprintf("reduction: basis has %d rows, accumulator %d dims", basis.Rows(), a.d))
	}
	c := a.Covariance()
	total := c.Trace()
	if total <= 0 {
		return 1
	}
	captured := 0.0
	for j := 0; j < basis.Cols(); j++ {
		b := basis.Col(j)
		captured += linalg.Dot(b, c.MulVec(b))
	}
	return captured / total
}

// Merge folds another accumulator into a (both remain d-dimensional).
func (a *CovarianceAccumulator) Merge(b *CovarianceAccumulator) {
	if a.d != b.d {
		panic(fmt.Sprintf("reduction: merging %d-dim into %d-dim accumulator", b.d, a.d))
	}
	a.n += b.n
	for i := range a.sum {
		a.sum[i] += b.sum[i]
		ra, rb := a.outer.RawRow(i), b.outer.RawRow(i)
		for j := range ra {
			ra[j] += rb[j]
		}
	}
}

// Mean returns the current mean vector. Panics when empty.
func (a *CovarianceAccumulator) Mean() []float64 {
	if a.n == 0 {
		panic("reduction: Mean of empty accumulator")
	}
	out := make([]float64, a.d)
	for i, s := range a.sum {
		out[i] = s / float64(a.n)
	}
	return out
}

// Covariance returns the current population covariance matrix
// C = Σxxᵀ/n − μμᵀ, symmetrized against floating-point drift. Requires at
// least 2 points.
func (a *CovarianceAccumulator) Covariance() *linalg.Dense {
	if a.n < 2 {
		panic(fmt.Sprintf("reduction: Covariance of %d points", a.n))
	}
	mu := a.Mean()
	c := linalg.NewDense(a.d, a.d)
	inv := 1 / float64(a.n)
	for i := 0; i < a.d; i++ {
		src := a.outer.RawRow(i)
		dst := c.RawRow(i)
		for j := 0; j < a.d; j++ {
			dst[j] = src[j]*inv - mu[i]*mu[j]
		}
	}
	for i := 0; i < a.d; i++ {
		for j := i + 1; j < a.d; j++ {
			v := 0.5 * (c.At(i, j) + c.At(j, i))
			c.Set(i, j, v)
			c.Set(j, i, v)
		}
	}
	return c
}

// FitPCA diagonalizes the current covariance and returns a PCA transform
// equivalent to refitting from scratch on all accumulated points with
// ScalingNone. Coherence probabilities need the raw points and are
// therefore not available on the streaming path; compute them on demand
// with core.AnalyzeBasis over whatever sample is retained.
func (a *CovarianceAccumulator) FitPCA() (*PCA, error) {
	cov := a.Covariance()
	ed, err := linalg.EigSym(cov)
	if err != nil {
		return nil, fmt.Errorf("reduction: streaming eigendecomposition: %w", err)
	}
	vals, vecs := ed.Descending()
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	scale := make([]float64, a.d)
	for i := range scale {
		scale[i] = 1
	}
	return &PCA{
		Mean:        a.Mean(),
		Scale:       scale,
		Eigenvalues: vals,
		Components:  vecs,
		Scaling:     ScalingNone,
	}, nil
}
