package reduction

import (
	"math"
	"testing"

	"repro/internal/dataset/synthetic"
	"repro/internal/linalg"
	"repro/internal/stats"
)

func TestTransformWhitenedUnitVariance(t *testing.T) {
	ds := synthetic.IonosphereLike(6)
	p, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	comps := p.TopK(ByEigenvalue, 5)
	w := p.TransformWhitened(ds.X, comps)
	vars := stats.ColumnVariances(w)
	for j, v := range vars {
		if math.Abs(v-1) > 1e-8 {
			t.Fatalf("whitened score %d variance %v", j, v)
		}
	}
	// Scores remain uncorrelated: whitened covariance is the identity.
	cov := stats.CovarianceMatrix(w)
	if !cov.Equal(linalg.Identity(5), 1e-8) {
		t.Fatalf("whitened covariance not identity")
	}
}

func TestTransformPointWhitenedMatchesMatrix(t *testing.T) {
	ds := synthetic.UniformCube("u", 60, 6, 2)
	p, err := Fit(ds.X, Options{ComputeCoherence: false})
	if err != nil {
		t.Fatal(err)
	}
	comps := []int{0, 2}
	m := p.TransformWhitened(ds.X, comps)
	for i := 0; i < 10; i++ {
		single := p.TransformPointWhitened(ds.X.Row(i), comps)
		if !linalg.VecEqual(single, m.Row(i), 1e-12) {
			t.Fatalf("row %d diverges", i)
		}
	}
}

func TestTransformWhitenedZeroEigenvaluePanics(t *testing.T) {
	// A rank-1 data set: second component has zero eigenvalue.
	x := linalg.NewDense(10, 2)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, float64(i))
		x.Set(i, 1, 2*float64(i))
	}
	p, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	p.TransformWhitened(x, []int{1})
}

func TestWhitenedDistanceIsMahalanobis(t *testing.T) {
	// In the full whitened space, squared Euclidean distance equals the
	// Mahalanobis distance (x−y)ᵀ C⁻¹ (x−y) of the centered data.
	ds := synthetic.GaussianClusters("g", 300, 4, 2, 3, 1, 5)
	p, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	all := p.TopK(ByEigenvalue, 4)
	w := p.TransformWhitened(ds.X, all)
	cov := stats.CovarianceMatrix(ds.X)
	inv, err := linalg.Inverse(cov)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			diff := linalg.SubVec(ds.X.Row(i), ds.X.Row(j))
			mahal := linalg.Dot(diff, inv.MulVec(diff))
			white := linalg.Dist2(w.RawRow(i), w.RawRow(j))
			if math.Abs(mahal-white*white) > 1e-6*(1+mahal) {
				t.Fatalf("pair (%d,%d): mahalanobis %v vs whitened %v", i, j, mahal, white*white)
			}
		}
	}
}
