// Package reduction implements the dimensionality-reduction layer: a PCA
// pipeline with optional studentization (covariance- vs correlation-matrix
// PCA, the paper's §2.2 scaling discussion), projection of data onto chosen
// component subsets, and the component-selection strategies the paper
// compares — eigenvalue ordering, coherence-probability ordering,
// eigenvalue thresholding (Table 1's "x%-thresholding") and energy targets.
package reduction

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// Scaling selects the data normalization applied before the covariance
// eigendecomposition.
type Scaling int

const (
	// ScalingNone centers the data but keeps original per-dimension scales
	// (classical covariance-matrix PCA).
	ScalingNone Scaling = iota
	// ScalingStudentize centers and scales every dimension to unit variance
	// (equivalent to correlation-matrix PCA) — the paper's recommended
	// normalization when dimensions use incomparable units (§2.2).
	ScalingStudentize
)

// String names the scaling mode.
func (s Scaling) String() string {
	switch s {
	case ScalingNone:
		return "none"
	case ScalingStudentize:
		return "studentize"
	default:
		return fmt.Sprintf("Scaling(%d)", int(s))
	}
}

// Options configure Fit.
type Options struct {
	// Scaling selects covariance (ScalingNone) or correlation
	// (ScalingStudentize) PCA.
	Scaling Scaling
	// ComputeCoherence additionally evaluates the coherence probability
	// P(D,e) of every component (needed by coherence-ordered selection and
	// the paper's scatter plots). It costs one extra pass over the data per
	// component.
	ComputeCoherence bool
}

// PCA is a fitted principal-component transform. Components are ordered by
// descending eigenvalue; all d components are retained so that callers can
// choose any subset post hoc.
type PCA struct {
	// Mean is the per-dimension mean removed before projection.
	Mean []float64
	// Scale is the per-dimension divisor applied after centering (all ones
	// for ScalingNone).
	Scale []float64
	// Eigenvalues holds the data variance along each component, descending.
	Eigenvalues []float64
	// Components holds the principal directions as columns (d x d), column
	// i corresponding to Eigenvalues[i].
	Components *linalg.Dense
	// Coherence holds P(D, e_i) per component when requested (nil
	// otherwise).
	Coherence []float64
	// MeanFactor holds the average coherence factor per component when
	// coherence was requested (nil otherwise).
	MeanFactor []float64
	// Scaling records the normalization used at fit time.
	Scaling Scaling
}

// Fit computes the PCA of the n x d data matrix x (rows are points).
func Fit(x *linalg.Dense, opts Options) (*PCA, error) {
	n, d := x.Dims()
	if n < 2 {
		return nil, fmt.Errorf("reduction: Fit requires >= 2 points, got %d", n)
	}
	var work *linalg.Dense
	p := &PCA{Scaling: opts.Scaling}
	switch opts.Scaling {
	case ScalingNone:
		work, p.Mean = stats.Center(x)
		p.Scale = make([]float64, d)
		for j := range p.Scale {
			p.Scale[j] = 1
		}
	case ScalingStudentize:
		work, p.Mean, p.Scale = stats.Standardize(x, 1e-12)
	default:
		return nil, fmt.Errorf("reduction: unknown scaling %d", int(opts.Scaling))
	}

	cov := stats.CovarianceMatrix(work)
	ed, err := linalg.EigSym(cov)
	if err != nil {
		return nil, fmt.Errorf("reduction: eigendecomposition failed: %w", err)
	}
	vals, vecs := ed.Descending()
	// Numerical noise can push tiny eigenvalues slightly negative; clamp.
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	p.Eigenvalues = vals
	p.Components = vecs

	if opts.ComputeCoherence {
		ba := core.AnalyzeBasis(work, vecs, false)
		p.Coherence = ba.Coherences()
		p.MeanFactor = make([]float64, len(ba.Reports))
		for i, r := range ba.Reports {
			p.MeanFactor[i] = r.MeanFactor
		}
	}
	return p, nil
}

// FitDataset is Fit applied to a data set's feature matrix.
func FitDataset(d *dataset.Dataset, opts Options) (*PCA, error) {
	return Fit(d.X, opts)
}

// Dims returns the ambient dimensionality d of the fitted transform.
func (p *PCA) Dims() int { return len(p.Mean) }

// TotalVariance returns the sum of all eigenvalues (the trace of the
// covariance matrix of the normalized data).
func (p *PCA) TotalVariance() float64 { return stats.Sum(p.Eigenvalues) }

// EnergyFraction returns the fraction of total variance captured by the
// given component indices.
func (p *PCA) EnergyFraction(components []int) float64 {
	total := p.TotalVariance()
	if total == 0 {
		return 0
	}
	kept := 0.0
	for _, i := range components {
		kept += p.Eigenvalues[i]
	}
	return kept / total
}

// normalize applies the fitted centering and scaling to a raw point.
func (p *PCA) normalize(x []float64) []float64 {
	if len(x) != len(p.Mean) {
		panic(fmt.Sprintf("reduction: point has %d dims, transform expects %d", len(x), len(p.Mean)))
	}
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - p.Mean[j]) / p.Scale[j]
	}
	return out
}

// TransformPoint projects a single raw point onto the selected components.
func (p *PCA) TransformPoint(x []float64, components []int) []float64 {
	z := p.normalize(x)
	out := make([]float64, len(components))
	for k, i := range components {
		out[k] = linalg.Dot(z, p.Components.Col(i))
	}
	return out
}

// Transform projects every row of the raw matrix x onto the selected
// components, returning an n x len(components) score matrix.
func (p *PCA) Transform(x *linalg.Dense, components []int) *linalg.Dense {
	n, d := x.Dims()
	if d != len(p.Mean) {
		panic(fmt.Sprintf("reduction: matrix has %d dims, transform expects %d", d, len(p.Mean)))
	}
	if len(components) == 0 {
		panic("reduction: Transform with no components")
	}
	sub := p.Components.SliceCols(components)
	out := linalg.NewDense(n, len(components))
	for i := 0; i < n; i++ {
		z := p.normalize(x.RawRow(i))
		out.SetRow(i, sub.MulVecT(z))
	}
	return out
}

// TransformAll projects x onto every component (a pure rotation of the
// normalized data); column i corresponds to Eigenvalues[i]. Selecting a
// component subset afterwards is a column slice of this matrix, which is
// how sweep experiments evaluate many dimensionalities cheaply.
func (p *PCA) TransformAll(x *linalg.Dense) *linalg.Dense {
	all := make([]int, p.Dims())
	for i := range all {
		all[i] = i
	}
	return p.Transform(x, all)
}

// InverseTransformPoint maps a reduced point (scores on the given
// components) back to the original feature space.
func (p *PCA) InverseTransformPoint(scores []float64, components []int) []float64 {
	if len(scores) != len(components) {
		panic(fmt.Sprintf("reduction: %d scores for %d components", len(scores), len(components)))
	}
	d := p.Dims()
	out := make([]float64, d)
	for k, i := range components {
		col := p.Components.Col(i)
		linalg.Axpy(scores[k], col, out)
	}
	for j := 0; j < d; j++ {
		out[j] = out[j]*p.Scale[j] + p.Mean[j]
	}
	return out
}

// ReduceDataset projects a labelled data set onto the selected components,
// preserving labels.
func (p *PCA) ReduceDataset(d *dataset.Dataset, components []int, name string) *dataset.Dataset {
	return d.WithMatrix(name, p.Transform(d.X, components))
}
