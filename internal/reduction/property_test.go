package reduction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset/synthetic"
	"repro/internal/knn"
	"repro/internal/linalg"
)

// Property-based tests: rather than pinning outputs on one example, these
// assert the mathematical invariants of the reduction layer on seeded
// random inputs across the dimensionalities the repo's workloads use
// (d = 7 toy, 16 reduced, 166 musk-like ambient).

var propertyDims = []int{7, 16, 166}

// propMatrix draws an n x d standard-normal matrix.
func propMatrix(rng *rand.Rand, n, d int) *linalg.Dense {
	m := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		row := m.RawRow(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	return m
}

// TestPropertyBasisOrthonormal: for any data and either scaling, the fitted
// component matrix V satisfies VᵀV = I to 1e-10 — the eigenvectors of a
// symmetric matrix form an orthonormal basis, and everything downstream
// (contraction, inverse transforms, coherence scale-invariance) leans on
// it.
func TestPropertyBasisOrthonormal(t *testing.T) {
	const tol = 1e-10
	for _, d := range propertyDims {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 2*d + 50
			x := propMatrix(rng, n, d)
			for _, sc := range []Scaling{ScalingNone, ScalingStudentize} {
				p, err := Fit(x, Options{Scaling: sc})
				if err != nil {
					t.Fatalf("d=%d seed=%d scaling=%s: %v", d, seed, sc, err)
				}
				gram := linalg.AtA(p.Components)
				for i := 0; i < d; i++ {
					for j := 0; j < d; j++ {
						want := 0.0
						if i == j {
							want = 1.0
						}
						if math.Abs(gram.At(i, j)-want) > tol {
							t.Fatalf("d=%d seed=%d scaling=%s: (VᵀV)[%d][%d] = %v, want %v (±%g)",
								d, seed, sc, i, j, gram.At(i, j), want, tol)
						}
					}
				}
			}
		}
	}
}

// TestPropertyPCAContraction: projection onto any orthonormal component
// subset never expands a pairwise distance (with ScalingNone the transform
// is center + rotate + drop coordinates, and each step is non-expanding).
// Checked for every prefix size of the eigenvalue ordering and a random
// subset, over all query/data pairs.
func TestPropertyPCAContraction(t *testing.T) {
	for _, d := range propertyDims {
		rng := rand.New(rand.NewSource(int64(100 + d)))
		n := 90
		x := propMatrix(rng, n, d)
		p, err := Fit(x, Options{Scaling: ScalingNone})
		if err != nil {
			t.Fatal(err)
		}
		origSq := knn.PairwiseSq(x, x)

		// Components are eigenvalue-descending, so prefixes are the usual
		// retained sets; add a random subset to cover arbitrary selections.
		subsets := [][]int{}
		for _, r := range []int{1, d / 2, d} {
			if r < 1 {
				r = 1
			}
			prefix := make([]int, r)
			for i := range prefix {
				prefix[i] = i
			}
			subsets = append(subsets, prefix)
		}
		subsets = append(subsets, rng.Perm(d)[:1+rng.Intn(d)])

		for _, comps := range subsets {
			red := p.Transform(x, comps)
			redSq := knn.PairwiseSq(red, red)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					ro := math.Sqrt(origSq.At(i, j))
					rr := math.Sqrt(redSq.At(i, j))
					// Tolerance: rotation arithmetic rounds at float64
					// scale, so allow a hair above the exact bound.
					if rr > ro+1e-9*(1+ro) {
						t.Fatalf("d=%d |comps|=%d: reduced distance %v exceeds original %v at pair (%d,%d)",
							d, len(comps), rr, ro, i, j)
					}
				}
			}
			// Keeping every component must preserve distances, not merely
			// contract them (pure rotation).
			if len(comps) == d {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						ro, rr := math.Sqrt(origSq.At(i, j)), math.Sqrt(redSq.At(i, j))
						if math.Abs(ro-rr) > 1e-8*(1+ro) {
							t.Fatalf("d=%d full rotation changed distance: %v vs %v", d, rr, ro)
						}
					}
				}
			}
		}
	}
}

// TestPropertyUniformCoherence: the paper's §3 calibration point. For
// uniform data every per-point coherence factor along a coordinate axis is
// identically 1 (a single nonzero contribution is its own RMS), so the
// data-set coherence probability P(D, e_j) must land at 2Φ(1)−1 ≈ 0.683 —
// the test allows ±0.02, though the identity is in fact exact. Random
// oblique directions, by contrast, mix d independent contributions and
// must sit visibly below that calibration value (the "flat profile" that
// marks uniform data as irreducible).
func TestPropertyUniformCoherence(t *testing.T) {
	const (
		want = 0.6826894921370859 // 2Φ(1)−1
		tol  = 0.02
	)
	for _, d := range propertyDims {
		for seed := int64(1); seed <= 2; seed++ {
			ds := synthetic.UniformCube("u", 1500, d, seed)
			work := center(ds.X)
			axis := make([]float64, d)
			for j := 0; j < d; j++ {
				for t2 := range axis {
					axis[t2] = 0
				}
				axis[j] = 1
				got := core.DatasetCoherence(work, axis)
				if math.Abs(got-want) > tol {
					t.Fatalf("d=%d seed=%d axis %d: P(D,e) = %v, want %v ± %v", d, seed, j, got, want, tol)
				}
			}

			// Oblique random unit directions: strictly less coherent.
			rng := rand.New(rand.NewSource(seed + 900))
			for trial := 0; trial < 4; trial++ {
				e := make([]float64, d)
				norm := 0.0
				for j := range e {
					e[j] = rng.NormFloat64()
					norm += e[j] * e[j]
				}
				norm = math.Sqrt(norm)
				for j := range e {
					e[j] /= norm
				}
				if got := core.DatasetCoherence(work, e); got >= want-tol {
					t.Fatalf("d=%d seed=%d: oblique direction coherence %v not below axis calibration %v", d, seed, got, want)
				}
			}
		}
	}
}

// center removes column means (the coherence model's precondition).
func center(x *linalg.Dense) *linalg.Dense {
	n, d := x.Dims()
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	out := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		src, dst := x.RawRow(i), out.RawRow(i)
		for j := range src {
			dst[j] = src[j] - mean[j]
		}
	}
	return out
}

// TestPropertyCoherenceScaleInvariance: P(D,e) is invariant to rescaling e
// (the factor cancels), so selection by coherence cannot be gamed by
// non-unit eigenvectors.
func TestPropertyCoherenceScaleInvariance(t *testing.T) {
	for _, d := range propertyDims {
		rng := rand.New(rand.NewSource(int64(7 + d)))
		x := propMatrix(rng, 60, d)
		work := center(x)
		e := make([]float64, d)
		for j := range e {
			e[j] = rng.NormFloat64()
		}
		base := core.DatasetCoherence(work, e)
		for _, s := range []float64{0.25, 4, 1e6} {
			scaled := make([]float64, d)
			for j := range e {
				scaled[j] = e[j] * s
			}
			if got := core.DatasetCoherence(work, scaled); math.Abs(got-base) > 1e-9 {
				t.Fatalf("d=%d scale %v: coherence %v != %v", d, s, got, base)
			}
		}
	}
}

// TestPropertyReducedCoherenceProbabilityRange: every coherence probability
// the fit reports is a probability.
func TestPropertyReducedCoherenceProbabilityRange(t *testing.T) {
	for _, d := range propertyDims {
		rng := rand.New(rand.NewSource(int64(13 * d)))
		x := propMatrix(rng, 2*d+40, d)
		p, err := Fit(x, Options{Scaling: ScalingStudentize, ComputeCoherence: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Coherence) != d {
			t.Fatalf("d=%d: %d coherence values", d, len(p.Coherence))
		}
		for i, c := range p.Coherence {
			if math.IsNaN(c) || c < 0 || c > 1 {
				t.Fatalf("d=%d component %d: coherence %v outside [0,1]", d, i, c)
			}
		}
	}
}
