package reduction

import (
	"testing"

	"repro/internal/dataset/synthetic"
)

func BenchmarkFitMusk(b *testing.B) {
	ds := synthetic.MuskLike(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(ds.X, Options{Scaling: ScalingStudentize}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitMuskWithCoherence(b *testing.B) {
	ds := synthetic.MuskLike(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(ds.X, Options{Scaling: ScalingStudentize, ComputeCoherence: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitArrhythmia(b *testing.B) {
	ds := synthetic.ArrhythmiaLike(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(ds.X, Options{Scaling: ScalingStudentize}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformMuskTop13(b *testing.B) {
	ds := synthetic.MuskLike(1)
	p, err := Fit(ds.X, Options{Scaling: ScalingStudentize})
	if err != nil {
		b.Fatal(err)
	}
	comps := p.TopK(ByEigenvalue, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(ds.X, comps)
	}
}
