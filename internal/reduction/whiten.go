package reduction

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// TransformWhitened projects every row of x onto the selected components and
// scales each score to unit variance (dividing by √eigenvalue). Euclidean
// distance in the whitened space is the Mahalanobis distance of the
// retained subspace — the "automatic distance function correction" the
// paper's introduction highlights: distances are measured in terms of the
// independent concepts rather than the raw correlated attributes, so no
// concept dominates by scale alone.
//
// Components with (numerically) zero eigenvalue carry no information and
// cannot be whitened; selecting one is a programming error and panics.
func (p *PCA) TransformWhitened(x *linalg.Dense, components []int) *linalg.Dense {
	out := p.Transform(x, components)
	for k, i := range components {
		ev := p.Eigenvalues[i]
		if ev <= 1e-12 {
			panic(fmt.Sprintf("reduction: whitening component %d with eigenvalue %g", i, ev))
		}
		inv := 1 / math.Sqrt(ev)
		for r := 0; r < out.Rows(); r++ {
			out.RawRow(r)[k] *= inv
		}
	}
	return out
}

// TransformPointWhitened is TransformWhitened for a single point.
func (p *PCA) TransformPointWhitened(x []float64, components []int) []float64 {
	out := p.TransformPoint(x, components)
	for k, i := range components {
		ev := p.Eigenvalues[i]
		if ev <= 1e-12 {
			panic(fmt.Sprintf("reduction: whitening component %d with eigenvalue %g", i, ev))
		}
		out[k] /= math.Sqrt(ev)
	}
	return out
}
