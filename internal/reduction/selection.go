package reduction

import (
	"fmt"
	"sort"
)

// An Ordering ranks the components of a fitted PCA from most to least
// desirable; selection strategies take prefixes of an ordering.
type Ordering int

const (
	// ByEigenvalue ranks components by descending eigenvalue — the
	// classical "preserve the most variance" rule.
	ByEigenvalue Ordering = iota
	// ByCoherence ranks components by descending coherence probability
	// P(D,e) — the paper's selection rule (§2): "Pick the vectors with the
	// largest coherence probability."
	ByCoherence
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case ByEigenvalue:
		return "eigenvalue"
	case ByCoherence:
		return "coherence"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Order returns all component indices ranked by the given ordering. Ties are
// broken by eigenvalue and then by index so results are deterministic.
// ByCoherence requires the PCA to have been fitted with ComputeCoherence.
func (p *PCA) Order(o Ordering) []int {
	d := len(p.Eigenvalues)
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	switch o {
	case ByEigenvalue:
		// Components are already stored in descending-eigenvalue order.
		return idx
	case ByCoherence:
		if p.Coherence == nil {
			panic("reduction: ByCoherence ordering requires Fit with ComputeCoherence")
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ia, ib := idx[a], idx[b]
			if p.Coherence[ia] > p.Coherence[ib] {
				return true
			}
			if p.Coherence[ia] < p.Coherence[ib] {
				return false
			}
			return p.Eigenvalues[ia] > p.Eigenvalues[ib]
		})
		return idx
	default:
		panic(fmt.Sprintf("reduction: unknown ordering %d", int(o)))
	}
}

// TopK returns the first k components of the given ordering.
func (p *PCA) TopK(o Ordering, k int) []int {
	d := len(p.Eigenvalues)
	if k <= 0 || k > d {
		panic(fmt.Sprintf("reduction: TopK k=%d out of range (0,%d]", k, d))
	}
	return p.Order(o)[:k]
}

// ThresholdEigenvalue returns the components whose eigenvalue is at least
// frac times the largest eigenvalue, in descending-eigenvalue order. With
// frac = 0.10 this is the paper's Table 1 "thresholding" baseline: "only
// those eigenvalues which are less than [10]% of the largest eigenvalue are
// discarded". At least one component is always returned.
func (p *PCA) ThresholdEigenvalue(frac float64) []int {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("reduction: ThresholdEigenvalue frac=%v out of [0,1]", frac))
	}
	if len(p.Eigenvalues) == 0 {
		return nil
	}
	cut := frac * p.Eigenvalues[0]
	var keep []int
	for i, v := range p.Eigenvalues {
		if v >= cut {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		keep = []int{0}
	}
	return keep
}

// EnergyTarget returns the smallest prefix of the descending-eigenvalue
// ordering that captures at least the given fraction of total variance —
// the classical "retain x% of the energy" rule of [17].
func (p *PCA) EnergyTarget(frac float64) []int {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("reduction: EnergyTarget frac=%v out of (0,1]", frac))
	}
	total := p.TotalVariance()
	if total == 0 {
		return []int{0}
	}
	acc := 0.0
	for i, v := range p.Eigenvalues {
		acc += v
		if acc/total >= frac {
			out := make([]int, i+1)
			for j := range out {
				out[j] = j
			}
			return out
		}
	}
	out := make([]int, len(p.Eigenvalues))
	for j := range out {
		out[j] = j
	}
	return out
}

// CoherenceFloor returns the components whose coherence probability is at
// least the given value, ranked by descending coherence. Requires coherence
// to have been computed. At least one component is always returned (the most
// coherent one).
func (p *PCA) CoherenceFloor(min float64) []int {
	if p.Coherence == nil {
		panic("reduction: CoherenceFloor requires Fit with ComputeCoherence")
	}
	order := p.Order(ByCoherence)
	var keep []int
	for _, i := range order {
		if p.Coherence[i] >= min {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		keep = order[:1]
	}
	return keep
}

// GapCutoff examines a descending value sequence and returns the length of
// the prefix that ends just before the largest multiplicative gap. It is
// the "examine the scatter plot and cut where the values separate from the
// rest" heuristic the paper applies by eye to Figures 3, 6 and 9. minKeep
// and maxKeep bound the returned prefix length.
func GapCutoff(desc []float64, minKeep, maxKeep int) int {
	n := len(desc)
	if n == 0 {
		panic("reduction: GapCutoff on empty sequence")
	}
	if minKeep < 1 {
		minKeep = 1
	}
	if maxKeep > n {
		maxKeep = n
	}
	if minKeep >= maxKeep {
		return maxKeep
	}
	bestK, bestGap := maxKeep, 0.0
	const eps = 1e-12
	for k := minKeep; k < maxKeep; k++ {
		gap := (desc[k-1] + eps) / (desc[k] + eps)
		if gap > bestGap {
			bestGap = gap
			bestK = k
		}
	}
	return bestK
}
