package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New(4)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Min(); ok {
		t.Fatalf("Min on empty")
	}
	if _, ok := tr.Max(); ok {
		t.Fatalf("Max on empty")
	}
	if got := tr.Range(0, 100, func(float64, int) bool { return true }); got != 0 {
		t.Fatalf("Range on empty visited %d", got)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("order 2 must panic")
		}
	}()
	New(2)
}

func TestInsertAndFullScan(t *testing.T) {
	tr := New(4)
	keys := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for i, k := range keys {
		tr.Insert(k, i)
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []float64
	tr.Range(-100, 100, func(k float64, v int) bool {
		got = append(got, k)
		// Value must be the original insertion index of this key.
		if keys[v] != k {
			t.Fatalf("value %d does not map back to key %v", v, k)
		}
		return true
	})
	if !sort.Float64sAreSorted(got) || len(got) != len(keys) {
		t.Fatalf("scan = %v", got)
	}
	if min, _ := tr.Min(); min != 0 {
		t.Fatalf("Min = %v", min)
	}
	if max, _ := tr.Max(); max != 9 {
		t.Fatalf("Max = %v", max)
	}
	if err := tr.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New(3)
	for i := 0; i < 50; i++ {
		tr.Insert(7, i)
	}
	tr.Insert(6, 100)
	tr.Insert(8, 200)
	seen := 0
	tr.Range(7, 7, func(k float64, v int) bool {
		if k != 7 {
			t.Fatalf("range leaked key %v", k)
		}
		seen++
		return true
	})
	if seen != 50 {
		t.Fatalf("found %d duplicates, want 50", seen)
	}
	if err := tr.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeBounds(t *testing.T) {
	tr := New(4)
	for i := 0; i < 20; i++ {
		tr.Insert(float64(i), i)
	}
	var got []float64
	tr.Range(5, 9, func(k float64, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 5 || got[0] != 5 || got[4] != 9 {
		t.Fatalf("range [5,9] = %v", got)
	}
	// Inverted range is empty.
	if n := tr.Range(9, 5, func(float64, int) bool { return true }); n != 0 {
		t.Fatalf("inverted range visited %d", n)
	}
	// Early stop.
	visited := tr.Range(0, 19, func(k float64, v int) bool { return k < 3 })
	if visited != 4 { // 0,1,2 continue; 3 stops
		t.Fatalf("early stop visited %d", visited)
	}
}

func TestTreeStaysBalancedAndOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, order := range []int{3, 4, 8, 32} {
		tr := New(order)
		n := 5000
		for i := 0; i < n; i++ {
			tr.Insert(rng.Float64()*1000, i)
		}
		if err := tr.validate(); err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		// Height is logarithmic: generous bound.
		if h := tr.Height(); h > 20 {
			t.Fatalf("order %d: height %d", order, h)
		}
		count := tr.Range(-1e9, 1e9, func(float64, int) bool { return true })
		if count != n {
			t.Fatalf("order %d: scan found %d of %d", order, count, n)
		}
	}
}

func TestRangeMatchesReferenceProperty(t *testing.T) {
	// Property: Range(a,b) visits exactly the reference-sorted entries in
	// [a,b], in order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		tr := New(3 + rng.Intn(10))
		ref := make([]float64, n)
		for i := 0; i < n; i++ {
			// Coarse keys force duplicates.
			k := float64(rng.Intn(40))
			ref[i] = k
			tr.Insert(k, i)
		}
		sort.Float64s(ref)
		lo := float64(rng.Intn(40)) - 5
		hi := lo + float64(rng.Intn(20))
		var want []float64
		for _, k := range ref {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		var got []float64
		tr.Range(lo, hi, func(k float64, v int) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return tr.validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxAfterManyInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New(5)
	lo, hi := 1e18, -1e18
	for i := 0; i < 2000; i++ {
		k := rng.NormFloat64() * 100
		if k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
		tr.Insert(k, i)
	}
	if min, _ := tr.Min(); min != lo {
		t.Fatalf("Min = %v, want %v", min, lo)
	}
	if max, _ := tr.Max(); max != hi {
		t.Fatalf("Max = %v, want %v", max, hi)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := New(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64(), i)
	}
}

func BenchmarkRangeScan(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tr := New(32)
	for i := 0; i < 100000; i++ {
		tr.Insert(rng.Float64()*1000, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 990
		tr.Range(lo, lo+10, func(float64, int) bool { return true })
	}
}
