// Package btree implements an in-memory B+ tree keyed by float64 with int
// payloads and duplicate-key support. It is the ordered storage substrate
// used by the iDistance index (internal/index): points are mapped to
// one-dimensional keys and k-NN queries become a sequence of key-range
// scans, exactly how such indexes are deployed over database B+ trees.
package btree

import (
	"fmt"
	"sort"
)

// Tree is a B+ tree holding (float64 key, int value) pairs. Duplicate keys
// are allowed. The zero value is not usable; construct with New.
type Tree struct {
	order int // max children of an internal node; max entries of a leaf
	root  node
	size  int
	first *leaf // leftmost leaf, head of the linked leaf chain
}

type node interface {
	// insert adds the entry and reports a split: the new right sibling and
	// the key separating it from the receiver (nil if no split).
	insert(key float64, value int, order int) (node, float64)
}

type leaf struct {
	keys   []float64
	values []int
	next   *leaf
}

type internal struct {
	// keys[i] separates children[i] (< keys[i]) from children[i+1]
	// (>= keys[i]).
	keys     []float64
	children []node
}

// DefaultOrder is used when New is given a non-positive order.
const DefaultOrder = 32

// New creates an empty tree. Order is the node fanout (>= 3; non-positive
// selects DefaultOrder).
func New(order int) *Tree {
	if order <= 0 {
		order = DefaultOrder
	}
	if order < 3 {
		panic(fmt.Sprintf("btree: order %d must be >= 3", order))
	}
	lf := &leaf{}
	return &Tree{order: order, root: lf, first: lf}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Insert adds a key/value pair (duplicates allowed).
func (t *Tree) Insert(key float64, value int) {
	right, sep := t.root.insert(key, value, t.order)
	if right != nil {
		t.root = &internal{keys: []float64{sep}, children: []node{t.root, right}}
	}
	t.size++
}

func (l *leaf) insert(key float64, value int, order int) (node, float64) {
	pos := sort.SearchFloat64s(l.keys, key)
	l.keys = append(l.keys, 0)
	copy(l.keys[pos+1:], l.keys[pos:])
	l.keys[pos] = key
	l.values = append(l.values, 0)
	copy(l.values[pos+1:], l.values[pos:])
	l.values[pos] = value
	if len(l.keys) <= order {
		return nil, 0
	}
	// Split: right sibling takes the upper half.
	mid := len(l.keys) / 2
	right := &leaf{
		keys:   append([]float64(nil), l.keys[mid:]...),
		values: append([]int(nil), l.values[mid:]...),
		next:   l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.values = l.values[:mid:mid]
	l.next = right
	return right, right.keys[0]
}

func (in *internal) insert(key float64, value int, order int) (node, float64) {
	idx := sort.SearchFloat64s(in.keys, key)
	// SearchFloat64s returns the first separator >= key; equal keys route
	// right, matching the leaf convention that right siblings start at the
	// separator.
	if idx < len(in.keys) && in.keys[idx] <= key {
		idx++
	}
	if idx > len(in.children)-1 {
		idx = len(in.children) - 1
	}
	right, sep := in.children[idx].insert(key, value, order)
	if right == nil {
		return nil, 0
	}
	in.keys = append(in.keys, 0)
	copy(in.keys[idx+1:], in.keys[idx:])
	in.keys[idx] = sep
	in.children = append(in.children, nil)
	copy(in.children[idx+2:], in.children[idx+1:])
	in.children[idx+1] = right
	if len(in.children) <= order {
		return nil, 0
	}
	// Split the internal node; the middle key moves up.
	midKey := len(in.keys) / 2
	upKey := in.keys[midKey]
	rightNode := &internal{
		keys:     append([]float64(nil), in.keys[midKey+1:]...),
		children: append([]node(nil), in.children[midKey+1:]...),
	}
	in.keys = in.keys[:midKey:midKey]
	in.children = in.children[: midKey+1 : midKey+1]
	return rightNode, upKey
}

// Range invokes fn for every entry with from <= key <= to, in ascending key
// order. Iteration stops early if fn returns false. The number of entries
// visited (including the one that stopped iteration) is returned.
func (t *Tree) Range(from, to float64, fn func(key float64, value int) bool) int {
	if from > to {
		return 0
	}
	lf, pos := t.seek(from)
	visited := 0
	for lf != nil {
		for ; pos < len(lf.keys); pos++ {
			if lf.keys[pos] > to {
				return visited
			}
			visited++
			if !fn(lf.keys[pos], lf.values[pos]) {
				return visited
			}
		}
		lf = lf.next
		pos = 0
	}
	return visited
}

// seek returns the leaf and position of the first entry with key >= from.
func (t *Tree) seek(from float64) (*leaf, int) {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			pos := sort.SearchFloat64s(v.keys, from)
			if pos == len(v.keys) {
				return v.next, 0
			}
			return v, pos
		case *internal:
			// Route equal separators LEFT: duplicates of the separator key
			// may live in the left subtree (a split can cut a run of equal
			// keys), and the leaf chain continues rightward anyway.
			idx := sort.SearchFloat64s(v.keys, from)
			n = v.children[idx]
		}
	}
}

// Min returns the smallest key (ok=false when empty).
func (t *Tree) Min() (float64, bool) {
	lf := t.first
	for lf != nil && len(lf.keys) == 0 {
		lf = lf.next
	}
	if lf == nil {
		return 0, false
	}
	return lf.keys[0], true
}

// Max returns the largest key (ok=false when empty).
func (t *Tree) Max() (float64, bool) {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			if len(v.keys) == 0 {
				return 0, false
			}
			return v.keys[len(v.keys)-1], true
		case *internal:
			n = v.children[len(v.children)-1]
		}
	}
}

// Height returns the tree height (1 for a single leaf); useful for testing
// balance.
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for {
		in, ok := n.(*internal)
		if !ok {
			return h
		}
		h++
		n = in.children[0]
	}
}

// validate checks structural invariants; used by tests.
func (t *Tree) validate() error {
	// Leaf chain must be sorted and cover size entries.
	count := 0
	prev := 0.0
	started := false
	for lf := t.first; lf != nil; lf = lf.next {
		if len(lf.keys) != len(lf.values) {
			return fmt.Errorf("btree: leaf key/value length mismatch")
		}
		for _, k := range lf.keys {
			if started && k < prev {
				return fmt.Errorf("btree: leaf chain out of order (%v after %v)", k, prev)
			}
			prev = k
			started = true
			count++
		}
	}
	if count != t.size {
		return fmt.Errorf("btree: leaf chain holds %d entries, size says %d", count, t.size)
	}
	return nil
}
