package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The paper's §3 closed form: along an axis vector, any point's coherence
// factor is exactly 1, so its coherence probability is 2Φ(1)−1 ≈ 0.6827 —
// too low to call the direction a concept, too high to discard it.
func ExampleCoherenceFactor() {
	x := []float64{4.2, -1, 3, 0.5} // arbitrary centered point
	e := []float64{1, 0, 0, 0}      // axis direction
	fmt.Printf("factor=%.0f probability=%.4f\n",
		core.CoherenceFactor(x, e), core.CoherenceProbability(x, e))
	// Output: factor=1 probability=0.6827
}

// A direction whose per-dimension contributions all agree reaches the
// maximum coherence factor √d.
func ExampleCoherenceProbability() {
	d := 16
	x := make([]float64, d)
	e := make([]float64, d)
	for j := range x {
		x[j] = 2
		e[j] = 0.25 // unit vector: 16 × 0.25² = 1
	}
	fmt.Printf("factor=%.0f\n", core.CoherenceFactor(x, e))
	// Output: factor=4
}
