package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset/synthetic"
	"repro/internal/linalg"
	"repro/internal/stats"
)

func TestContributionsSumToProjection(t *testing.T) {
	x := []float64{1, -2, 3}
	e := []float64{0.5, 0.5, 0.5}
	c := Contributions(x, e)
	if got, want := stats.Sum(c), linalg.Dot(x, e); math.Abs(got-want) > 1e-15 {
		t.Fatalf("contributions sum %v != projection %v", got, want)
	}
	if !linalg.VecEqual(c, []float64{0.5, -1, 1.5}, 0) {
		t.Fatalf("contributions = %v", c)
	}
}

func TestContributionsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Contributions([]float64{1}, []float64{1, 2})
}

func TestCoherenceFactorAxisVectorIsOne(t *testing.T) {
	// The paper's §3 closed form: for any point and an axis-aligned unit
	// vector e₁ = (1,0,…,0) with x₁ ≠ 0, the coherence factor is exactly 1,
	// independent of the coordinates and the dimensionality.
	for _, d := range []int{2, 5, 20, 100} {
		x := make([]float64, d)
		e := make([]float64, d)
		x[0] = 3.7 // arbitrary nonzero
		e[0] = 1
		for j := 1; j < d; j++ {
			x[j] = float64(j) // values on other dims are irrelevant
		}
		if got := CoherenceFactor(x, e); math.Abs(got-1) > 1e-12 {
			t.Fatalf("d=%d: axis coherence factor = %v, want 1", d, got)
		}
		// And the coherence probability is 2Φ(1)−1 ≈ 0.6827 (Equation 5).
		if got := CoherenceProbability(x, e); math.Abs(got-0.6826894921370859) > 1e-12 {
			t.Fatalf("d=%d: axis coherence probability = %v", d, got)
		}
	}
}

func TestCoherenceFactorZeroPoint(t *testing.T) {
	x := []float64{0, 0, 0}
	e := []float64{1, 0, 0}
	if got := CoherenceFactor(x, e); got != 0 {
		t.Fatalf("zero point factor = %v", got)
	}
	if got := CoherenceProbability(x, e); got != 0 {
		t.Fatalf("zero point probability = %v", got)
	}
}

func TestCoherenceFactorPerfectAgreement(t *testing.T) {
	// When every dimension contributes the same value, the empirical spread
	// σ equals the |mean| contribution, so CF = √d — the maximum possible:
	// by Cauchy–Schwarz |Σc| <= √d·√(Σc²), hence CF <= √d always.
	for _, d := range []int{2, 4, 9, 16} {
		x := make([]float64, d)
		e := make([]float64, d)
		for j := range x {
			x[j] = 2
			e[j] = 1 / math.Sqrt(float64(d))
		}
		if got, want := CoherenceFactor(x, e), math.Sqrt(float64(d)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("d=%d: perfect agreement CF = %v, want %v", d, got, want)
		}
	}
}

func TestCoherenceFactorUpperBoundProperty(t *testing.T) {
	// CF(x,e) <= √d for all x, e (Cauchy–Schwarz).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(30)
		x := make([]float64, d)
		e := make([]float64, d)
		for j := range x {
			x[j] = rng.NormFloat64() * 10
			e[j] = rng.NormFloat64()
		}
		cf := CoherenceFactor(x, e)
		return cf >= 0 && cf <= math.Sqrt(float64(d))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoherenceFactorScaleInvariantInE(t *testing.T) {
	// Scaling the direction vector must not change the coherence factor
	// (numerator and denominator scale together).
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 12)
	e := make([]float64, 12)
	for j := range x {
		x[j] = rng.NormFloat64()
		e[j] = rng.NormFloat64()
	}
	base := CoherenceFactor(x, e)
	scaled := make([]float64, len(e))
	for j := range e {
		scaled[j] = e[j] * 7.3
	}
	if got := CoherenceFactor(x, scaled); math.Abs(got-base) > 1e-12 {
		t.Fatalf("CF not scale invariant in e: %v vs %v", got, base)
	}
	// Also invariant under scaling of x.
	xs := make([]float64, len(x))
	for j := range x {
		xs[j] = x[j] * -0.31
	}
	if got := CoherenceFactor(xs, e); math.Abs(got-base) > 1e-12 {
		t.Fatalf("CF not scale invariant in x: %v vs %v", got, base)
	}
}

func TestCoherenceProbabilityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(20)
		x := make([]float64, d)
		e := make([]float64, d)
		for j := range x {
			x[j] = rng.NormFloat64()
			e[j] = rng.NormFloat64()
		}
		p := CoherenceProbability(x, e)
		return p >= 0 && p < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetCoherenceUniformData(t *testing.T) {
	// Equation 5: for uniform data and axis vectors,
	// P(D,e_i) = 2Φ(1) − 1 ≈ 0.683 for every i — exactly, because the
	// coherence factor is identically 1 for every point with x_i ≠ 0.
	cube := synthetic.UniformCube("u", 500, 20, 7)
	centered, _ := stats.Center(cube.X)
	for _, i := range []int{0, 7, 19} {
		e := make([]float64, 20)
		e[i] = 1
		got := DatasetCoherence(centered, e)
		if math.Abs(got-0.6826894921370859) > 1e-9 {
			t.Fatalf("uniform data axis %d coherence = %v, want ~0.6827", i, got)
		}
	}
}

func TestDatasetCoherenceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	DatasetCoherence(linalg.NewDense(3, 4), []float64{1, 0})
}

func TestAnalyzeBasisConceptVsNoise(t *testing.T) {
	// A latent-factor data set: the concept direction must receive much
	// higher coherence than a random direction orthogonal to it.
	ds := synthetic.MustGenerate(synthetic.LatentFactorConfig{
		Name: "one-concept", N: 300, Dims: 40, Classes: 2,
		ConceptStrengths: []float64{6}, ClassSeparation: 1, NoiseStdDev: 0.3, Seed: 5,
	})
	cov := stats.CovarianceMatrix(ds.X)
	ed, err := linalg.EigSym(cov)
	if err != nil {
		t.Fatal(err)
	}
	_, vecs := ed.Descending()
	ba := AnalyzeBasis(ds.X, vecs, true)
	cps := ba.Coherences()
	// Top eigenvector = the concept; the rest are isotropic noise.
	concept := cps[0]
	noiseMean := stats.Mean(cps[1:])
	if concept < noiseMean+0.1 {
		t.Fatalf("concept coherence %v not separated from noise mean %v", concept, noiseMean)
	}
	// Eigenvalue of the top report must dominate.
	evs := ba.Eigenvalues()
	if evs[0] < 5*evs[1] {
		t.Fatalf("top eigenvalue %v not dominant over %v", evs[0], evs[1])
	}
}

func TestAnalyzeBasisEigenvaluesMatchEigSym(t *testing.T) {
	// The per-direction variance computed by AnalyzeBasis on eigenvectors
	// must reproduce the eigenvalues of the covariance matrix.
	ds := synthetic.UniformCube("u", 400, 6, 3)
	cov := stats.CovarianceMatrix(ds.X)
	ed, err := linalg.EigSym(cov)
	if err != nil {
		t.Fatal(err)
	}
	vals, vecs := ed.Descending()
	ba := AnalyzeBasis(ds.X, vecs, true)
	for i, r := range ba.Reports {
		if math.Abs(r.Eigenvalue-vals[i]) > 1e-10 {
			t.Fatalf("report %d eigenvalue %v != eig %v", i, r.Eigenvalue, vals[i])
		}
		if r.Index != i {
			t.Fatalf("report %d has index %d", i, r.Index)
		}
	}
}

func TestAnalyzeBasisCenterFlag(t *testing.T) {
	// Passing already-centered data with center=false must agree with
	// passing raw data with center=true.
	ds := synthetic.UniformCube("u", 100, 5, 9)
	centered, _ := stats.Center(ds.X)
	basis := linalg.Identity(5)
	a := AnalyzeBasis(ds.X, basis, true)
	b := AnalyzeBasis(centered, basis, false)
	for i := range a.Reports {
		if math.Abs(a.Reports[i].Coherence-b.Reports[i].Coherence) > 1e-12 {
			t.Fatalf("center flag changed coherence at %d", i)
		}
	}
}

func TestAnalyzeBasisDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	AnalyzeBasis(linalg.NewDense(10, 4), linalg.Identity(5), true)
}

func TestEigenvalueCoherenceCorrelation(t *testing.T) {
	// Clean latent data: eigenvalue magnitude and coherence correlate
	// (paper §4: "usually eigenvectors with high magnitudes also have high
	// coherence probabilities").
	ds := synthetic.MustGenerate(synthetic.LatentFactorConfig{
		Name: "clean", N: 400, Dims: 25, Classes: 2,
		ConceptStrengths: []float64{6, 5, 4}, ClassSeparation: 1, NoiseStdDev: 0.4, Seed: 8,
	})
	std := ds.Standardized()
	cov := stats.CovarianceMatrix(std.X)
	ed, err := linalg.EigSym(cov)
	if err != nil {
		t.Fatal(err)
	}
	_, vecs := ed.Descending()
	ba := AnalyzeBasis(std.X, vecs, true)
	if r := ba.EigenvalueCoherenceCorrelation(); r < 0.5 {
		t.Fatalf("clean data eigenvalue/coherence correlation = %v, want strong positive", r)
	}
}

func TestMeanFactorTracksCoherence(t *testing.T) {
	// MeanFactor and Coherence are monotonically related summaries; a
	// direction with higher coherence probability must have a higher mean
	// factor on the same data.
	ds := synthetic.MustGenerate(synthetic.LatentFactorConfig{
		Name: "mf", N: 200, Dims: 30, Classes: 2,
		ConceptStrengths: []float64{8}, ClassSeparation: 1, NoiseStdDev: 0.2, Seed: 3,
	})
	cov := stats.CovarianceMatrix(ds.X)
	ed, err := linalg.EigSym(cov)
	if err != nil {
		t.Fatal(err)
	}
	_, vecs := ed.Descending()
	ba := AnalyzeBasis(ds.X, vecs, true)
	top, bottom := ba.Reports[0], ba.Reports[len(ba.Reports)-1]
	if top.Coherence > bottom.Coherence && top.MeanFactor <= bottom.MeanFactor {
		t.Fatalf("MeanFactor ordering contradicts Coherence ordering")
	}
}

func TestContributionHistogram(t *testing.T) {
	// Figure 1 machinery: a coherent vector (all contributions equal)
	// yields a tight histogram; an incoherent one a wide histogram.
	d := 64
	coherentX := make([]float64, d)
	e := make([]float64, d)
	incoherentX := make([]float64, d)
	rng := rand.New(rand.NewSource(4))
	for j := 0; j < d; j++ {
		coherentX[j] = 1
		e[j] = 1 / math.Sqrt(float64(d))
		incoherentX[j] = rng.NormFloat64() * 5
	}
	hc := ContributionHistogram(coherentX, e, 10)
	hi := ContributionHistogram(incoherentX, e, 10)
	if hc.Total() != d || hi.Total() != d {
		t.Fatalf("histogram totals wrong")
	}
	// All coherent contributions identical → a single occupied bin region.
	occupied := 0
	for _, c := range hc.Counts {
		if c > 0 {
			occupied++
		}
	}
	if occupied != 1 {
		t.Fatalf("coherent histogram occupies %d bins", occupied)
	}
}
