// Package core implements the paper's primary contribution: the coherence
// model for judging how meaningful each direction produced by a
// dimensionality-reduction transform is (Aggarwal, "On the Effects of
// Dimensionality Reduction on High Dimensional Similarity Search",
// PODS 2001, §2).
//
// For a mean-centered data point X = (x₁,…,x_d) and a unit direction e, the
// projection X·e decomposes into per-original-dimension contributions
// c_j = x_j·e_j. Under the null hypothesis that the c_j are i.i.d. draws
// from a zero-mean distribution, the average contribution X·e/d would be
// within noise of zero; the coherence factor measures how many standard
// errors it actually is from zero:
//
//	σ(e,X)  = sqrt( Σ_j c_j² / d )              (RMS about the null mean 0)
//	CF(X,e) = (|X·e|/d) / (σ(e,X)/√d)
//	CP(X,e) = 2Φ(CF) − 1                        (coherence probability)
//	P(D,e)  = mean of CP(Y,e) over the data set (Equation 3)
//
// High P(D,e) means the original dimensions "agree" along e — the paper's
// notion of a semantic concept; low P(D,e) marks e as noise regardless of
// its eigenvalue.
package core

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// Contributions returns the per-original-dimension contributions
// c_j = x_j·e_j whose sum is the projection x·e (Equation 1). x must already
// be centered (the model assumes the data mean is at the origin).
func Contributions(x, e []float64) []float64 {
	if len(x) != len(e) {
		panic(fmt.Sprintf("core: Contributions length mismatch %d vs %d", len(x), len(e)))
	}
	c := make([]float64, len(x))
	for j := range x {
		c[j] = x[j] * e[j]
	}
	return c
}

// CoherenceFactor returns the coherence factor of the centered point x along
// direction e: the number of standard deviations by which the mean
// contribution deviates from the null-hypothesis mean of zero. A zero point
// (σ = 0) has coherence factor 0.
func CoherenceFactor(x, e []float64) float64 {
	if len(x) != len(e) {
		panic(fmt.Sprintf("core: CoherenceFactor length mismatch %d vs %d", len(x), len(e)))
	}
	d := float64(len(x))
	proj := 0.0
	sumSq := 0.0
	for j := range x {
		c := x[j] * e[j]
		proj += c
		sumSq += c * c
	}
	if sumSq == 0 {
		return 0
	}
	sigma := math.Sqrt(sumSq / d)
	// (|proj|/d) / (sigma/√d) = |proj| / (sigma·√d).
	return math.Abs(proj) / (sigma * math.Sqrt(d))
}

// CoherenceProbability returns 2Φ(CF)−1 for the centered point x along e:
// the probability mass of the null distribution lying closer to zero than
// the observed mean contribution (Equation 2). It lies in [0, 1).
func CoherenceProbability(x, e []float64) float64 {
	return stats.TwoSidedProbability(CoherenceFactor(x, e))
}

// DatasetCoherence returns P(D,e): the mean coherence probability of
// direction e over all rows of the centered data matrix x (Equation 3).
func DatasetCoherence(x *linalg.Dense, e []float64) float64 {
	n, d := x.Dims()
	if d != len(e) {
		panic(fmt.Sprintf("core: DatasetCoherence dimension mismatch %d vs %d", d, len(e)))
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += CoherenceProbability(x.RawRow(i), e)
	}
	return sum / float64(n)
}

// VectorReport summarizes one basis direction against a data set.
type VectorReport struct {
	// Index is the column of the basis matrix this report describes.
	Index int
	// Eigenvalue is the data variance along the direction (mean squared
	// projection of the centered data).
	Eigenvalue float64
	// Coherence is P(D,e), the data-set coherence probability.
	Coherence float64
	// MeanFactor is the average coherence factor over the data set, a
	// resolution-friendly companion to Coherence (which saturates near 1).
	MeanFactor float64
}

// BasisAnalysis holds per-direction reports for a full basis, ordered as the
// basis columns.
type BasisAnalysis struct {
	Reports []VectorReport
}

// AnalyzeBasis evaluates every column of basis against the data matrix x.
// If center is true the column means of x are removed first (the model
// requires centered data); pass false when x is already centered. Basis
// columns are used as given and are expected to be unit vectors (the
// coherence factor is scale-invariant in e, so this is not enforced).
func AnalyzeBasis(x *linalg.Dense, basis *linalg.Dense, center bool) *BasisAnalysis {
	n, d := x.Dims()
	bd, k := basis.Dims()
	if bd != d {
		panic(fmt.Sprintf("core: AnalyzeBasis basis has %d rows for %d-dimensional data", bd, d))
	}
	work := x
	if center {
		work, _ = stats.Center(x)
	}
	reports := make([]VectorReport, k)
	cols := make([][]float64, k)
	for j := 0; j < k; j++ {
		cols[j] = basis.Col(j)
	}
	sumsCP := make([]float64, k)
	sumsCF := make([]float64, k)
	sumsSq := make([]float64, k)
	for i := 0; i < n; i++ {
		row := work.RawRow(i)
		for j := 0; j < k; j++ {
			cf := CoherenceFactor(row, cols[j])
			sumsCF[j] += cf
			sumsCP[j] += stats.TwoSidedProbability(cf)
			p := linalg.Dot(row, cols[j])
			sumsSq[j] += p * p
		}
	}
	for j := 0; j < k; j++ {
		reports[j] = VectorReport{
			Index:      j,
			Eigenvalue: sumsSq[j] / float64(n),
			Coherence:  sumsCP[j] / float64(n),
			MeanFactor: sumsCF[j] / float64(n),
		}
	}
	return &BasisAnalysis{Reports: reports}
}

// Coherences returns the P(D,e) value of every basis column, in column
// order.
func (b *BasisAnalysis) Coherences() []float64 {
	out := make([]float64, len(b.Reports))
	for i, r := range b.Reports {
		out[i] = r.Coherence
	}
	return out
}

// Eigenvalues returns the variance along every basis column, in column
// order.
func (b *BasisAnalysis) Eigenvalues() []float64 {
	out := make([]float64, len(b.Reports))
	for i, r := range b.Reports {
		out[i] = r.Eigenvalue
	}
	return out
}

// EigenvalueCoherenceCorrelation returns the Pearson correlation between
// eigenvalue magnitudes and coherence probabilities across the basis — the
// quantity the paper's scatter plots (Figures 3, 6, 9, 12, 14) visualize.
// Data sets where this correlation is high are well served by classical
// eigenvalue-ordered reduction; where it is low, coherence ordering wins.
func (b *BasisAnalysis) EigenvalueCoherenceCorrelation() float64 {
	return stats.Pearson(b.Eigenvalues(), b.Coherences())
}

// ContributionHistogram bins the per-dimension contributions of the centered
// point x along e into the given number of bins — the distribution the
// paper's Figure 1 draws for its two illustrative eigenvectors.
func ContributionHistogram(x, e []float64, bins int) *stats.Histogram {
	return stats.FromData(Contributions(x, e), bins)
}
