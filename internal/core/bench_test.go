package core

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func BenchmarkCoherenceFactor256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 256)
	e := make([]float64, 256)
	for j := range x {
		x[j] = rng.NormFloat64()
		e[j] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoherenceFactor(x, e)
	}
}

func BenchmarkAnalyzeBasis500x64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := linalg.NewDense(500, 64)
	for i := 0; i < 500; i++ {
		for j := 0; j < 64; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	basis := linalg.Identity(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeBasis(x, basis, true)
	}
}
