package repro

// One benchmark per table and figure of the paper (see DESIGN.md §3 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured numbers). Each
// benchmark regenerates its artifact from scratch — data generation, PCA,
// coherence analysis and evaluation — and reports the headline quantity of
// that artifact as a benchmark metric, so
//
//	go test -bench=BenchmarkTable1 -benchmem
//
// both times the pipeline and prints the reproduced result.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/reduction"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(experiments.Config{})
		b.ReportMetric(res.Rows[0].OptimalAccuracy, "musk-opt-acc")
		b.ReportMetric(float64(res.Rows[0].OptimalDims), "musk-opt-dims")
		b.ReportMetric(res.Rows[2].OptimalAccuracy, "arrhythmia-opt-acc")
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure1()
		b.ReportMetric(r.FactorB, "coherence-factor-B")
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure2()
		b.ReportMetric(r.ScaledDot, "scaled-dot")
	}
}

func benchScatter(b *testing.B, spec experiments.DatasetSpec, scaling reduction.Scaling) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.Scatter(spec, scaling)
		b.ReportMetric(r.Correlation, "eig-coh-pearson")
	}
}

func BenchmarkFigure3(b *testing.B) { // Musk scatter (normalized)
	benchScatter(b, experiments.Musk(1), reduction.ScalingStudentize)
}

func BenchmarkFigure4(b *testing.B) { // Musk coherence distribution
	for i := 0; i < b.N; i++ {
		r := experiments.CoherenceDistribution(experiments.Musk(1))
		b.ReportMetric(r.MeanLift(), "scaling-coherence-lift")
	}
}

func BenchmarkFigure5(b *testing.B) { // Musk quality curves
	for i := 0; i < b.N; i++ {
		r := experiments.ScalingQuality(experiments.Musk(1))
		opt := r.Curve("scaled").Optimal()
		b.ReportMetric(opt.Accuracy, "scaled-opt-acc")
		b.ReportMetric(float64(opt.Dims), "scaled-opt-dims")
	}
}

func BenchmarkFigure6(b *testing.B) { // Ionosphere scatter
	benchScatter(b, experiments.Ionosphere(1), reduction.ScalingStudentize)
}

func BenchmarkFigure7(b *testing.B) { // Ionosphere coherence distribution
	for i := 0; i < b.N; i++ {
		r := experiments.CoherenceDistribution(experiments.Ionosphere(1))
		b.ReportMetric(r.MeanLift(), "scaling-coherence-lift")
	}
}

func BenchmarkFigure8(b *testing.B) { // Ionosphere quality curves
	for i := 0; i < b.N; i++ {
		r := experiments.ScalingQuality(experiments.Ionosphere(1))
		opt := r.Curve("scaled").Optimal()
		b.ReportMetric(opt.Accuracy, "scaled-opt-acc")
		b.ReportMetric(float64(opt.Dims), "scaled-opt-dims")
	}
}

func BenchmarkFigure9(b *testing.B) { // Arrhythmia scatter
	benchScatter(b, experiments.Arrhythmia(1), reduction.ScalingStudentize)
}

func BenchmarkFigure10(b *testing.B) { // Arrhythmia coherence distribution
	for i := 0; i < b.N; i++ {
		r := experiments.CoherenceDistribution(experiments.Arrhythmia(1))
		b.ReportMetric(r.MeanLift(), "scaling-coherence-lift")
	}
}

func BenchmarkFigure11(b *testing.B) { // Arrhythmia quality curves
	for i := 0; i < b.N; i++ {
		r := experiments.ScalingQuality(experiments.Arrhythmia(1))
		opt := r.Curve("scaled").Optimal()
		b.ReportMetric(opt.Accuracy, "scaled-opt-acc")
		b.ReportMetric(float64(opt.Dims), "scaled-opt-dims")
	}
}

func BenchmarkFigure12(b *testing.B) { // Noisy A scatter (poor matching)
	benchScatter(b, experiments.NoisyA(1), reduction.ScalingNone)
}

func BenchmarkFigure13(b *testing.B) { // Noisy A ordering comparison
	for i := 0; i < b.N; i++ {
		r := experiments.OrderingQuality(experiments.NoisyA(1))
		coh := r.Curve("coherence ordering").Optimal()
		eig := r.Curve("eigenvalue ordering").Optimal()
		b.ReportMetric(coh.Accuracy, "coherence-opt-acc")
		b.ReportMetric(eig.Accuracy, "eigenvalue-opt-acc")
	}
}

func BenchmarkFigure14(b *testing.B) { // Noisy B scatter (poor matching)
	benchScatter(b, experiments.NoisyB(1), reduction.ScalingNone)
}

func BenchmarkFigure15(b *testing.B) { // Noisy B ordering comparison
	for i := 0; i < b.N; i++ {
		r := experiments.OrderingQuality(experiments.NoisyB(1))
		coh := r.Curve("coherence ordering").Optimal()
		b.ReportMetric(coh.Accuracy, "coherence-opt-acc")
		b.ReportMetric(float64(coh.Dims), "coherence-opt-dims")
	}
}

func BenchmarkUniformCoherence(b *testing.B) { // §3 closed form
	for i := 0; i < b.N; i++ {
		r := experiments.UniformCoherence(experiments.Config{})
		b.ReportMetric(r.AxisCoherence[len(r.AxisCoherence)-1], "axis-coherence")
	}
}

func BenchmarkRelativeContrast(b *testing.B) { // §1.1 contrast collapse
	for i := 0; i < b.N; i++ {
		r := experiments.ContrastSweep(experiments.Config{})
		b.ReportMetric(r.Contrast[len(r.Dims)-1][2], "L2-contrast-at-200d")
	}
}

func BenchmarkIndexPruning(b *testing.B) { // §1.1 pruning recovery
	for i := 0; i < b.N; i++ {
		r := experiments.IndexPruning(experiments.Config{})
		b.ReportMetric(r.Rows[0].KDTree, "kdtree-full-scanfrac")
		b.ReportMetric(r.Rows[1].KDTree, "kdtree-reduced-scanfrac")
	}
}

func BenchmarkLSHRecall(b *testing.B) { // recall-vs-work sweep headline
	for i := 0; i < b.N; i++ {
		r := experiments.LSHRecall(experiments.Config{})
		best, _ := r.Best(0.2)
		b.ReportMetric(best.Recall, "best-recall-under-20pct")
		b.ReportMetric(best.ScanFraction, "best-scanfrac")
		b.ReportMetric(r.Rows[len(r.Rows)/3-1].Recall, "raw-recall-max-probes")
	}
}

// lshBenchData generates an n-point latent-factor set at dimensionality d,
// the shapes the LSH index is benchmarked at: the aggressively reduced
// regime (16), a mid reduction (64), and the raw Musk dimensionality (166).
func lshBenchData(b *testing.B, n, d int) *Matrix {
	b.Helper()
	ds, err := Generate(LatentFactorConfig{
		Name: "lsh-bench", N: n, Dims: d, Classes: 4,
		ConceptStrengths: []float64{6, 4, 3, 2}, ClassSeparation: 1.5,
		NoiseStdDev: 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds.X
}

func benchLSHBuild(b *testing.B, d int) {
	b.Helper()
	data := lshBenchData(b, 4000, d)
	cfg := LSHConfig{Tables: 8, Hashes: 10, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := BuildLSH(data, cfg)
		if ix.Len() != 4000 {
			b.Fatal("bad build")
		}
	}
}

func benchLSHQuery(b *testing.B, d int) {
	b.Helper()
	data := lshBenchData(b, 4000, d)
	ix := BuildLSH(data, LSHConfig{Tables: 8, Hashes: 10, Seed: 1})
	queries := data.SliceRows([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, stats := ix.KNNApproxSet(queries, 10, 16)
		if len(res) != queries.Rows() {
			b.Fatal("bad query batch")
		}
		if i == 0 {
			b.ReportMetric(float64(stats.CandidateSize)/float64(queries.Rows()), "candidates/query")
		}
	}
}

func BenchmarkLSHBuildD16(b *testing.B)  { benchLSHBuild(b, 16) }
func BenchmarkLSHBuildD64(b *testing.B)  { benchLSHBuild(b, 64) }
func BenchmarkLSHBuildD166(b *testing.B) { benchLSHBuild(b, 166) }
func BenchmarkLSHQueryD16(b *testing.B)  { benchLSHQuery(b, 16) }
func BenchmarkLSHQueryD64(b *testing.B)  { benchLSHQuery(b, 64) }
func BenchmarkLSHQueryD166(b *testing.B) { benchLSHQuery(b, 166) }

func BenchmarkLocalReduction(b *testing.B) { // §3.1 extension
	for i := 0; i < b.N; i++ {
		r := experiments.LocalReduction(experiments.Config{})
		b.ReportMetric(r.LocalAccuracy, "local-acc")
		b.ReportMetric(r.GlobalAccuracy, "global-acc")
	}
}

func BenchmarkIGridComparison(b *testing.B) { // reference [3] companion
	for i := 0; i < b.N; i++ {
		r := experiments.IGridComparison(experiments.Config{})
		b.ReportMetric(r.ContrastRows[len(r.ContrastRows)-1].IGridSpread, "igrid-spread-200d")
		b.ReportMetric(r.ContrastRows[len(r.ContrastRows)-1].L2Spread, "l2-spread-200d")
	}
}

func BenchmarkImplicitDimensionality(b *testing.B) { // §3 companion (ref [15])
	for i := 0; i < b.N; i++ {
		r := experiments.ImplicitDimensionality(experiments.Config{})
		b.ReportMetric(r.Rows[0].D2, "musk-D2")
		b.ReportMetric(r.Rows[3].D2, "uniform10-D2")
	}
}

func BenchmarkScalingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ScalingAblation(experiments.Config{})
		b.ReportMetric(r.Rows[0].CoherenceLift, "musk-coherence-lift")
	}
}

func BenchmarkSelectionAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.SelectionAblation(experiments.Config{})
		b.ReportMetric(r.Rows[len(r.Rows)-3].Accuracy, "noisyA-coherence-acc")
	}
}

func BenchmarkNoiseAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NoiseAblation(experiments.Config{})
		b.ReportMetric(r.Rows[len(r.Rows)-1].Benefit, "benefit-at-max-noise")
	}
}

func BenchmarkMetricAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.MetricAblation(experiments.Config{})
		b.ReportMetric(r.Rows[2].Reduced, "L2-reduced-acc")
	}
}
