package repro

import (
	"repro/internal/dataset/synthetic"
	"repro/internal/serve"
	"repro/internal/store"
)

// This file exposes the quantized vector store: a block-major, mmap-backed
// on-disk format with per-dimension scalar quantization and two-phase
// search (SIMD quantized scan, exact float64 rescore). `drtool
// -store-bench` and `datagen -bin` are the CLI front ends.

// VectorStore is an opened quantized store. Search runs the two-phase scan;
// a rescore budget of Len() makes results bit-identical to SearchSetBatch.
type VectorStore = store.Store

// StoreConfig parameterizes store construction: code precision, optional
// float32-precision leading dimensions, a storage-order permutation (e.g.
// coherence order, so high-coherence dimensions stay full precision), and
// block granularity.
type StoreConfig = store.BuildConfig

// StorePrecision selects the quantized code width.
type StorePrecision = store.Precision

// Store precisions: one byte or two bytes per quantized dimension.
const (
	StoreInt8  = store.Int8
	StoreInt16 = store.Int16
)

// StoreWriter streams rows into a store file with O(d) memory.
type StoreWriter = store.Writer

// StoreScales accumulates per-dimension min/max over streamed rows — the
// first pass of a two-pass streaming build.
type StoreScales = store.ScaleAccumulator

// WriteStore quantizes data into a store file at path.
func WriteStore(path string, data *Matrix, cfg StoreConfig) error {
	return store.Write(path, data, cfg)
}

// OpenStore maps a store file for searching.
func OpenStore(path string) (*VectorStore, error) { return store.Open(path) }

// CreateStore opens a streaming writer for n rows of d dimensions;
// cfg.Mins/cfg.Steps must carry precomputed scales (see NewStoreScales).
func CreateStore(path string, n, d int, cfg StoreConfig) (*StoreWriter, error) {
	return store.Create(path, n, d, cfg)
}

// NewStoreScales starts a scale accumulation over d-dimensional rows.
func NewStoreScales(d int) *StoreScales { return store.NewScaleAccumulator(d) }

// NewEngineFromStore builds a sharded serving engine whose shards scan a
// quantized store: exact mode is bit-identical to SearchSetBatch (full
// rescore), approximate mode caps per-shard rescoring at cfg.Rescore.
func NewEngineFromStore(st *VectorStore, cfg ServeConfig) (*Engine, error) {
	return serve.NewFromStore(st, cfg)
}

// RowStream generates a synthetic data set row by row with O(d) memory; its
// rows are bit-identical to Generate on the same config, and Reset replays
// them, enabling two-pass streaming store builds at million-point scale.
type RowStream = synthetic.RowStream

// NewRowStream validates the config and prepares the stream.
func NewRowStream(c LatentFactorConfig) (*RowStream, error) { return synthetic.NewRowStream(c) }
