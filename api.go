// Package repro is the public API of coherence-aware dimensionality
// reduction for high-dimensional similarity search, reproducing
//
//	Charu C. Aggarwal, "On the Effects of Dimensionality Reduction on
//	High Dimensional Similarity Search", PODS 2001.
//
// The library covers the full pipeline the paper evaluates:
//
//   - labelled data sets (CSV/ARFF loaders plus synthetic generators that
//     stand in for the paper's UCI workloads),
//   - PCA with covariance or correlation (studentized) normalization,
//   - the paper's coherence model — per-direction coherence factors and
//     probabilities that separate semantic concepts from noise,
//   - component-selection strategies (eigenvalue order, coherence order,
//     thresholding, energy targets),
//   - exact k-NN search with several metrics and three partition indexes
//     (k-d tree, VA-file, R-tree) with pruning statistics,
//   - the feature-stripping evaluation harness used for every figure.
//
// Quickstart:
//
//	ds := repro.IonosphereLike(1)
//	p, _ := repro.Fit(ds.X, repro.Options{
//		Scaling:          repro.ScalingStudentize,
//		ComputeCoherence: true,
//	})
//	comps := p.TopK(repro.ByCoherence, 10)     // the paper's selection rule
//	reduced := p.ReduceDataset(ds, comps, "reduced")
//	acc := repro.DatasetAccuracy(reduced)       // feature-stripped quality
//
// The experiment drivers that regenerate every table and figure live in
// internal/experiments and are runnable via cmd/experiments or the
// benchmarks in bench_test.go.
package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dataset/synthetic"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/reduction"
)

// Matrix is a dense row-major matrix; rows are points.
type Matrix = linalg.Dense

// NewMatrix creates an r x c zero matrix.
func NewMatrix(r, c int) *Matrix { return linalg.NewDense(r, c) }

// MatrixFromRows builds a matrix from a slice of equal-length rows.
func MatrixFromRows(rows [][]float64) *Matrix { return linalg.FromRows(rows) }

// Dataset is a labelled point set; Labels[i] is the class ("semantic
// variable") of row i and never participates in distances.
type Dataset = dataset.Dataset

// NewDataset validates and constructs a Dataset.
func NewDataset(name string, x *Matrix, labels []int) (*Dataset, error) {
	return dataset.New(name, x, labels)
}

// CSVOptions configures ReadCSV.
type CSVOptions = dataset.CSVOptions

// ReadCSV parses a labelled data set from CSV (see CSVOptions).
func ReadCSV(r io.Reader, name string, opts CSVOptions) (*Dataset, error) {
	return dataset.ReadCSV(r, name, opts)
}

// WriteCSV writes features plus a final class column.
func WriteCSV(w io.Writer, d *Dataset) error { return dataset.WriteCSV(w, d) }

// ReadARFF parses the Weka/UCI ARFF format; the last nominal attribute
// becomes the class.
func ReadARFF(r io.Reader, fallbackName string) (*Dataset, error) {
	return dataset.ReadARFF(r, fallbackName)
}

// LatentFactorConfig describes a synthetic data set with low implicit
// dimensionality: x = S(Wz + ε) with a class-dependent latent z.
type LatentFactorConfig = synthetic.LatentFactorConfig

// Generate builds the data set described by the config.
func Generate(c LatentFactorConfig) (*Dataset, error) { return synthetic.Generate(c) }

// MuskLike generates the 476 x 166 analogue of UCI Musk used by the paper's
// Figures 3–5 and Table 1.
func MuskLike(seed int64) *Dataset { return synthetic.MuskLike(seed) }

// IonosphereLike generates the 351 x 34 analogue of UCI Ionosphere
// (Figures 6–8).
func IonosphereLike(seed int64) *Dataset { return synthetic.IonosphereLike(seed) }

// ArrhythmiaLike generates the 452 x 279 analogue of UCI Arrhythmia
// (Figures 9–11).
func ArrhythmiaLike(seed int64) *Dataset { return synthetic.ArrhythmiaLike(seed) }

// UniformCube generates uniform data in [-0.5, 0.5]^d — the paper's §3
// worst case for dimensionality reduction.
func UniformCube(name string, n, d int, seed int64) *Dataset {
	return synthetic.UniformCube(name, n, d, seed)
}

// Corrupt replaces the given feature columns with uniform noise of the given
// amplitude — the paper's noisy-data-set construction (§4.1).
func Corrupt(d *Dataset, cols []int, amplitude float64, seed int64) *Dataset {
	return synthetic.Corrupt(d, cols, amplitude, seed)
}

// NoisyDataA returns the paper's "noisy data set A" analogue (corrupted
// Ionosphere) along with the corrupted column indices.
func NoisyDataA(seed int64) (*Dataset, []int) { return synthetic.NoisyDataA(seed) }

// NoisyDataB returns the paper's "noisy data set B" analogue (corrupted
// Arrhythmia).
func NoisyDataB(seed int64) (*Dataset, []int) { return synthetic.NoisyDataB(seed) }

// PCA is a fitted principal-component transform retaining all components,
// their eigenvalues and (optionally) their coherence probabilities.
type PCA = reduction.PCA

// Options configure Fit.
type Options = reduction.Options

// Scaling selects the normalization applied before eigendecomposition.
type Scaling = reduction.Scaling

// Scaling modes: plain centering (covariance PCA) or per-dimension
// studentization (correlation PCA, the paper's §2.2 recommendation).
const (
	ScalingNone       = reduction.ScalingNone
	ScalingStudentize = reduction.ScalingStudentize
)

// Ordering ranks fitted components for selection.
type Ordering = reduction.Ordering

// Orderings: classical descending eigenvalue, or the paper's descending
// coherence probability.
const (
	ByEigenvalue = reduction.ByEigenvalue
	ByCoherence  = reduction.ByCoherence
)

// Fit computes the PCA of a data matrix (rows are points).
func Fit(x *Matrix, opts Options) (*PCA, error) { return reduction.Fit(x, opts) }

// FitDataset is Fit on a data set's feature matrix.
func FitDataset(d *Dataset, opts Options) (*PCA, error) { return reduction.FitDataset(d, opts) }

// GapCutoff finds the largest multiplicative gap in a descending sequence —
// the paper's "read the cut-off from the scatter plot" heuristic.
func GapCutoff(desc []float64, minKeep, maxKeep int) int {
	return reduction.GapCutoff(desc, minKeep, maxKeep)
}

// CoherenceFactor returns the paper's coherence factor of a centered point
// along a direction (§2): the deviation of the mean per-dimension
// contribution from the zero-mean null hypothesis, in standard errors.
func CoherenceFactor(x, e []float64) float64 { return core.CoherenceFactor(x, e) }

// CoherenceProbability returns 2Φ(CF)−1 ∈ [0,1) (Equation 2).
func CoherenceProbability(x, e []float64) float64 { return core.CoherenceProbability(x, e) }

// DatasetCoherence returns P(D,e), the mean coherence probability of a
// direction over a centered data matrix (Equation 3).
func DatasetCoherence(x *Matrix, e []float64) float64 { return core.DatasetCoherence(x, e) }

// BasisAnalysis reports eigenvalue and coherence per basis direction.
type BasisAnalysis = core.BasisAnalysis

// AnalyzeBasis evaluates every basis column (eigenvector) against a data
// matrix; set center unless x is already mean-centered.
func AnalyzeBasis(x *Matrix, basis *Matrix, center bool) *BasisAnalysis {
	return core.AnalyzeBasis(x, basis, center)
}

// Metric is a dissimilarity function over vectors.
type Metric = knn.Metric

// Neighbor is one k-NN result (row index and distance).
type Neighbor = knn.Neighbor

// Metrics. Minkowski with P < 1 gives the fractional metrics of the paper's
// reference [1].
type (
	// Euclidean is the L2 metric.
	Euclidean = knn.Euclidean
	// SquaredEuclidean is L2² — same rankings as L2 without the square root.
	SquaredEuclidean = knn.SquaredEuclidean
	// Manhattan is the L1 metric.
	Manhattan = knn.Manhattan
	// Chebyshev is the L∞ metric.
	Chebyshev = knn.Chebyshev
	// Minkowski is the general Lp metric (fractional p allowed).
	Minkowski = knn.Minkowski
	// Cosine is 1 − cos(a,b).
	Cosine = knn.Cosine
)

// Search returns the k nearest rows of data to query under metric m; pass
// exclude >= 0 to skip a row (leave-one-out).
func Search(data *Matrix, query []float64, k int, m Metric, exclude int) []Neighbor {
	return knn.Search(data, query, k, m, exclude)
}

// SearchSet returns the k nearest rows of data for every row of queries;
// pass selfExclude when data and queries share storage.
func SearchSet(data, queries *Matrix, k int, m Metric, selfExclude bool) [][]Neighbor {
	return knn.SearchSet(data, queries, k, m, selfExclude)
}

// SearchSetParallel is SearchSet across a worker pool sized by
// runtime.GOMAXPROCS — identical results, near-linear speedup on large
// ground-truth workloads.
func SearchSetParallel(data, queries *Matrix, k int, m Metric, selfExclude bool) [][]Neighbor {
	return knn.SearchSetParallel(data, queries, k, m, selfExclude)
}

// RelativeContrast measures the Beyer-et-al. meaningfulness statistic
// (Dmax−Dmin)/Dmin of a query workload.
func RelativeContrast(data, queries *Matrix, m Metric) (knn.ContrastReport, error) {
	return knn.RelativeContrast(data, queries, m)
}

// Index is an exact Euclidean k-NN structure reporting per-query work.
type Index = index.Index

// IndexStats reports the work done by one k-NN query.
type IndexStats = index.Stats

// BuildKDTree builds a bucketed k-d tree (leafSize <= 0 for the default).
func BuildKDTree(data *Matrix, leafSize int) Index { return index.BuildKDTree(data, leafSize) }

// BuildVAFile builds a vector-approximation file with 2^bits cells per
// dimension.
func BuildVAFile(data *Matrix, bits int) Index { return index.BuildVAFile(data, bits) }

// BuildRTree bulk-loads an STR R-tree (fanout <= 0 for the default).
func BuildRTree(data *Matrix, fanout int) Index { return index.BuildRTree(data, fanout) }

// PaperK is the neighbor count the paper evaluates with (k = 3).
const PaperK = eval.PaperK

// PredictionAccuracy runs the paper's feature-stripping measurement: the
// fraction of k-NN results (over all leave-one-out queries) whose class
// matches the query's class.
func PredictionAccuracy(x *Matrix, labels []int, k int, m Metric) float64 {
	return eval.PredictionAccuracy(x, labels, k, m)
}

// DatasetAccuracy is PredictionAccuracy with the paper's defaults (k=3,
// Euclidean).
func DatasetAccuracy(d *Dataset) float64 { return eval.DatasetAccuracy(d) }

// NeighborPrecision is the mean overlap of reduced-space neighbors with
// full-space neighbors.
func NeighborPrecision(full, reduced *Matrix, k int, m Metric) float64 {
	return eval.NeighborPrecision(full, reduced, k, m)
}

// Curve is an accuracy-versus-dimensionality sweep result.
type Curve = eval.Curve

// SweepConfig configures Sweep.
type SweepConfig = eval.SweepConfig

// Sweep measures feature-stripped accuracy as a function of retained
// components, taking them in the given order.
func Sweep(ds *Dataset, p *PCA, order []int, label string, cfg SweepConfig) Curve {
	return eval.Sweep(ds, p, order, label, cfg)
}
