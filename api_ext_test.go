package repro

import (
	"math"
	"testing"
)

// Exercises the extension surface of the public API end to end.

func TestPublicClusteringAndLocalReduction(t *testing.T) {
	ds, err := SubspaceMixture(SubspaceMixtureConfig{
		Name: "mix", N: 200, Dims: 16, Clusters: 4, LatentPerCluster: 2,
		ConceptStrength: 3, ClassSeparation: 1.5, CenterSpread: 8,
		NoiseStdDev: 0.8, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	km, err := KMeans(ds.X, KMeansConfig{K: 4, Seed: 1, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := Silhouette(ds.X, km.Assign, 4); s < 0.2 {
		t.Fatalf("silhouette = %v", s)
	}
	lr, err := FitLocal(ds.X, LocalConfig{Clusters: 4, FixedComponents: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := lr.KNN(ds.X.Row(0), 3, 0)
	if len(res) != 3 {
		t.Fatalf("local knn = %v", res)
	}
	if acc := lr.Accuracy(ds, 3); acc < 0.5 {
		t.Fatalf("local accuracy = %v", acc)
	}
}

func TestPublicStreamingAccumulator(t *testing.T) {
	ds := UniformCube("u", 100, 5, 3)
	acc := NewCovarianceAccumulator(5)
	acc.AddMatrix(ds.X)
	p, err := acc.FitPCA()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Fit(ds.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Eigenvalues {
		if math.Abs(p.Eigenvalues[i]-batch.Eigenvalues[i]) > 1e-8 {
			t.Fatalf("streamed eigenvalue %d diverges", i)
		}
	}
}

func TestPublicFitVariants(t *testing.T) {
	ds := IonosphereLike(2)
	svd, err := FitSVD(ds.X, Options{Scaling: ScalingStudentize})
	if err != nil {
		t.Fatal(err)
	}
	topk, err := FitTopK(ds.X, 5, Options{Scaling: ScalingStudentize}, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Fit(ds.X, Options{Scaling: ScalingStudentize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(svd.Eigenvalues[i]-full.Eigenvalues[i]) > 1e-6 {
			t.Fatalf("svd eigenvalue %d diverges", i)
		}
		if math.Abs(topk.Eigenvalues[i]-full.Eigenvalues[i]) > 1e-5 {
			t.Fatalf("topk eigenvalue %d diverges", i)
		}
	}
}

func TestPublicIGridAndIDistance(t *testing.T) {
	ds := UniformCube("u", 300, 6, 4)
	g := BuildIGrid(ds.X, 6, 2)
	res, stats := g.KNN(ds.X.Row(0), 4)
	if len(res) != 4 || res[0].Index != 0 {
		t.Fatalf("igrid knn = %v", res)
	}
	if stats.PointsScanned <= 0 {
		t.Fatalf("igrid stats = %+v", stats)
	}
	id := BuildIDistance(ds.X, 5, 1)
	res2, _ := id.KNN(ds.X.Row(0), 4)
	if res2[0].Index != 0 || res2[0].Dist != 0 {
		t.Fatalf("idistance knn = %v", res2)
	}
	// Exactness: agree with brute force.
	want := Search(ds.X, ds.X.Row(0), 4, Euclidean{}, -1)
	for i := range want {
		if math.Abs(res2[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("idistance rank %d: %v vs %v", i, res2[i].Dist, want[i].Dist)
		}
	}
}

func TestPublicCorrelationDimension(t *testing.T) {
	ds := UniformCube("u", 500, 3, 5)
	est, err := CorrelationDimension(ds.X, FractalOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.D2 < 1.5 || est.D2 > 3.5 {
		t.Fatalf("uniform cube D2 = %v", est.D2)
	}
}

func TestPublicWhitenedTransform(t *testing.T) {
	ds := IonosphereLike(3)
	p, err := FitDataset(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	comps := p.TopK(ByEigenvalue, 4)
	w := p.TransformWhitened(ds.X, comps)
	if w.Cols() != 4 || w.Rows() != ds.N() {
		t.Fatalf("whitened shape %dx%d", w.Rows(), w.Cols())
	}
	single := p.TransformPointWhitened(ds.X.Row(0), comps)
	for j := range single {
		if math.Abs(single[j]-w.At(0, j)) > 1e-12 {
			t.Fatalf("whitened point diverges at %d", j)
		}
	}
}

func TestPublicMatrixHelpers(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("MatrixFromRows wrong")
	}
	z := NewMatrix(2, 3)
	if z.Rows() != 2 || z.Cols() != 3 {
		t.Fatalf("NewMatrix wrong")
	}
	// Coherence helpers on a centered matrix.
	centered := MatrixFromRows([][]float64{{1, 0}, {-1, 0}})
	if got := DatasetCoherence(centered, []float64{1, 0}); math.Abs(got-0.6826894921370859) > 1e-12 {
		t.Fatalf("DatasetCoherence = %v", got)
	}
	ba := AnalyzeBasis(centered, MatrixFromRows([][]float64{{1, 0}, {0, 1}}), false)
	if len(ba.Reports) != 2 {
		t.Fatalf("AnalyzeBasis reports = %d", len(ba.Reports))
	}
	if GapCutoff([]float64{10, 9, 1}, 1, 3) != 2 {
		t.Fatalf("GapCutoff wrong")
	}
}

func TestPublicContrastAndAccuracyHelpers(t *testing.T) {
	ds := GaussianClustersHelper(t)
	full := DatasetAccuracy(ds)
	if full < 0.9 {
		t.Fatalf("clustered accuracy = %v", full)
	}
	if got := NeighborPrecision(ds.X, ds.X, 3, Euclidean{}); got != 1 {
		t.Fatalf("self precision = %v", got)
	}
	if got := PredictionAccuracy(ds.X, ds.Labels, PaperK, Manhattan{}); got < 0.9 {
		t.Fatalf("manhattan accuracy = %v", got)
	}
}

func TestPublicLSHApproximateSearch(t *testing.T) {
	ds, err := Generate(LatentFactorConfig{
		Name: "lsh", N: 1200, Dims: 24, Classes: 3,
		ConceptStrengths: []float64{5, 4, 3}, ClassSeparation: 2, NoiseStdDev: 0.5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildLSH(ds.X, LSHConfig{Tables: 8, Hashes: 6, Seed: 1})
	var _ ApproxIndex = ix // the facade type satisfies the interface
	if ix.Len() != 1200 || ix.Dims() != 24 {
		t.Fatalf("Len/Dims = %d/%d", ix.Len(), ix.Dims())
	}
	q := ds.X.Row(7)
	exact := Search(ds.X, q, 10, Euclidean{}, -1)
	approx, stats := ix.KNNApprox(q, 10, 16)
	if r := Recall(approx, exact); r < 0.5 {
		t.Fatalf("recall = %v", r)
	}
	if stats.BucketsProbed != 8*16 {
		t.Fatalf("BucketsProbed = %d", stats.BucketsProbed)
	}
	if stats.CandidateSize == 0 || stats.CandidateSize != stats.PointsScanned {
		t.Fatalf("candidate accounting: %+v", stats)
	}
	if frac := ScanFraction(stats, ix.Len()); frac <= 0 || frac > 1 {
		t.Fatalf("scan fraction = %v", frac)
	}
	// Batch and serial answers agree; parallel ground truth matches serial.
	batch, _ := ix.KNNApproxSet(ds.X, 5, 4)
	single, _ := ix.KNNApprox(ds.X.RawRow(3), 5, 4)
	for i := range single {
		if batch[3][i] != single[i] {
			t.Fatalf("batch result differs at rank %d", i)
		}
	}
	par := SearchSetParallel(ds.X, ds.X, 3, Euclidean{}, true)
	ser := SearchSet(ds.X, ds.X, 3, Euclidean{}, true)
	for i := range ser {
		for j := range ser[i] {
			if par[i][j] != ser[i][j] {
				t.Fatalf("parallel search differs at query %d rank %d", i, j)
			}
		}
	}
	if mr := MeanRecall(par, ser); mr != 1 {
		t.Fatalf("MeanRecall of identical workloads = %v", mr)
	}
}

// GaussianClustersHelper builds a tiny clustered set through the synthetic
// generator exposed in the facade's Generate path.
func GaussianClustersHelper(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(LatentFactorConfig{
		Name: "g", N: 120, Dims: 8, Classes: 2,
		ConceptStrengths: []float64{5}, ClassSeparation: 3, NoiseStdDev: 0.3, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPublicBatchDistanceEngine(t *testing.T) {
	ds := GaussianClustersHelper(t)
	queries := ds.X.SliceRows([]int{0, 1, 2, 3, 4, 5, 6})
	batch := SearchSetBatch(ds.X, queries, 4, Euclidean{}, false)
	exact := SearchSet(ds.X, queries, 4, Euclidean{}, false)
	for i := range exact {
		for j := range exact[i] {
			if batch[i][j] != exact[i][j] {
				t.Fatalf("SearchSetBatch differs at query %d rank %d: %v vs %v",
					i, j, batch[i][j], exact[i][j])
			}
		}
	}
	d2 := PairwiseSq(ds.X, queries)
	if r, c := d2.Dims(); r != 7 || c != 120 {
		t.Fatalf("PairwiseSq dims %dx%d", r, c)
	}
	sq := SquaredEuclidean{}
	want := sq.Distance(queries.RawRow(2), ds.X.RawRow(9))
	if got := d2.At(2, 9); math.Abs(got-want) > 1e-9*(1+want) {
		t.Fatalf("PairwiseSq[2][9] = %v, want %v", got, want)
	}
}
