#!/usr/bin/env bash
# bench.sh measures the batch-distance engine's key kernels and writes
# BENCH_knn.json (or $1) with ns/op for each, alongside the frozen pre-engine
# baselines so the before/after comparison travels with the repo. It also
# runs `drtool -store-bench` on the quantized vector store (STORE_N points,
# default one million, at d=166) and splices its recall / peak-RSS /
# bytes-per-vector / qps table into the same JSON under "store". It then
# drives the sharded serving engine through `drtool -serve-bench` at the
# acceptance workload (10k queries, concurrency 32, musk-like n=6598 d=166)
# and records the outcome accounting and latency percentiles in
# BENCH_serve.json (or $3). The serving record is gated on the mutation
# stress suite under the race detector, and a `drtool -serve-mutate`
# acceptance run (10k ops, concurrency 32, 90/10 read/write) is spliced
# into the same JSON under "mutate".
#
# Usage: scripts/bench.sh [output.json] [benchtime] [serve-output.json]
# Env:   STORE_N     store-bench scale (default 1000000; 0 skips the store run)
#        STORE_FILE  reuse/build the store at this path instead of a temp file
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_knn.json}
benchtime=${2:-5x}
serveout=${3:-BENCH_serve.json}
storen=${STORE_N:-1000000}
storefile=${STORE_FILE:-}

# Never record numbers from a tree that violates the repo's own invariants:
# an unguarded kernel, a global-rand call site, or a lock held across a
# blocking call makes the measurement unreproducible or unrepresentative, so
# the JSON would be untrustworthy. The run is gated against the committed
# baseline (new findings fail; recorded ones do not) and emits JSON so the
# verdict is machine-readable next to the benchmark output.
if ! go run ./cmd/drlint -format json -baseline .drlint-baseline.json ./...; then
  echo "bench.sh: drlint found new violations; refusing to record benchmarks" >&2
  exit 1
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# The ns-scale Dot kernels need enough iterations to swamp timer overhead,
# so they get a time-based budget instead of the fixed iteration count.
go test -run=NONE -benchtime=200ms -bench='^(BenchmarkDot166|BenchmarkDotU8_166|BenchmarkDotU16_166|BenchmarkDotQ15U8_166|BenchmarkDotQ15U16_166|BenchmarkDotQ15U8x4_166|BenchmarkDotQ15U8x8_166)$' ./internal/linalg/ >>"$tmp"
go test -run=NONE -benchtime="$benchtime" \
  -bench='^(BenchmarkMulT512x166|BenchmarkMulNaiveT512x166|BenchmarkAtA6598x166)$' \
  ./internal/linalg/ >>"$tmp"
go test -run=NONE -benchtime="$benchtime" \
  -bench='^(BenchmarkPairwiseSq1024x166|BenchmarkSearchSetParallel6598x166|BenchmarkSearchSetBatch6598x166)$' \
  ./internal/knn/ >>"$tmp"
go test -run=NONE -benchtime="$benchtime" -bench='^BenchmarkLSHQueryD166$' . >>"$tmp"
go test -run=NONE -benchtime="$benchtime" \
  -bench='^(BenchmarkStoreSearchInt8_6598x166|BenchmarkStoreSearchInt16_6598x166|BenchmarkExactSearch6598x166)$' \
  ./internal/store/ >>"$tmp"
# One full drlint pass (parse + type-check + all seventeen rules, witness
# build included): the cost CI and `go test ./...` pay per run, recorded so
# regressions are visible.
go test -run=NONE -benchtime=1x -bench='^BenchmarkDrlintModule$' ./internal/analysis/ >>"$tmp"

# Regression guard on the scan rewrite: the integer-SIMD blocked scan must
# hold at least a 2x lead over the float64 scalar scan on the acceptance
# shape, or the measurement is refused — a recorded BENCH_knn.json always
# certifies the quantized path actually pays for itself.
awk '
/^BenchmarkStoreSearchInt8_6598x166/ { int8 = $3 }
/^BenchmarkExactSearch6598x166/      { exact = $3 }
END {
    if (int8 == 0 || exact == 0) {
        print "bench.sh: missing StoreSearchInt8/ExactSearch rows in benchmark output" > "/dev/stderr"
        exit 1
    }
    if (int8 * 2 > exact) {
        printf "bench.sh: StoreSearchInt8_6598x166 (%d ns/op) is not 2x faster than ExactSearch6598x166 (%d ns/op); refusing to record\n", int8, exact > "/dev/stderr"
        exit 1
    }
    printf "scan guard: StoreSearchInt8 %d ns/op vs ExactSearch %d ns/op (%.2fx)\n", int8, exact, exact / int8
}
' "$tmp"

# Quantized-store acceptance run: stream-build STORE_N x 166 points, verify
# the store-backed exact path bit-identical to SearchSetBatch, measure
# recall@10 of the budgeted approximate path, and record peak RSS and
# bytes-per-vector next to the kernel numbers. Its JSON is spliced into
# $out below as the "store" object.
storetmp=""
if [ "$storen" -gt 0 ]; then
  storetmp=$(mktemp)
  storeargs=(-store-bench -store-n "$storen" -store-out "$storetmp" -store-min-recall 0.99)
  if [ -n "$storefile" ]; then
    storeargs+=(-store "$storefile")
  fi
  go run ./cmd/drtool "${storeargs[@]}"
fi

awk -v out="$out" -v storefile="$storetmp" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns[name] = $3
    order[n++] = name
}
END {
    printf "{\n" > out
    printf "  \"unit\": \"ns/op\",\n" >> out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"benchtime\": \"%s\",\n", "'"$benchtime"'" >> out
    printf "  \"current\": {\n" >> out
    for (i = 0; i < n; i++) {
        sep = (i < n - 1) ? "," : ""
        printf "    \"%s\": %s%s\n", order[i], ns[order[i]], sep >> out
    }
    printf "  },\n" >> out
    # Pre-engine baselines measured on the same machine at the seed commit:
    # scalar SearchSetParallel ground truth, Mul(a, bT) via the naive ikj
    # kernel, CovarianceMatrix via T().Mul(), and the pre-rewrite LSH query.
    printf "  \"baseline_seed\": {\n" >> out
    printf "    \"SearchSetParallel6598x166\": 60404269,\n" >> out
    printf "    \"MulNaiveT512x166\": 25600000,\n" >> out
    printf "    \"CovarianceMatrix6598x166\": 208387405\n" >> out
    if (storefile == "") {
        printf "  }\n" >> out
    } else {
        # Splice the store-bench report in as the "store" object.
        printf "  },\n" >> out
        printf "  \"store\": " >> out
        first = 1
        while ((getline line < storefile) > 0) {
            if (first) { printf "%s\n", line >> out; first = 0 }
            else       { printf "  %s\n", line >> out }
        }
        close(storefile)
    }
    printf "}\n" >> out
}
' "$tmp"
rm -f "$storetmp"

echo "wrote $out"
cat "$out"

# Never record serving numbers from an engine whose mutation path can lose
# or duplicate operations: the mutation stress suite must pass under the
# race detector with shuffled order before BENCH_serve.json is written.
echo "bench.sh: mutation stress gate (race detector, shuffled)"
go test ./internal/serve/ -race -shuffle=on \
  -run 'TestMutateStress|TestMutationMatchesRebuild|TestStoreMutationMatchesRebuild|TestCompactDeterministic'

# Serving-layer acceptance run: the load generator verifies a query sample
# bit-identical to SearchSetBatch and fails on any lost or duplicated
# response, so a recorded BENCH_serve.json doubles as a correctness receipt.
go run ./cmd/drtool -serve-bench -serve-out "$serveout"

# Live-mutation acceptance run: 10k ops at concurrency 32 with the default
# 90/10 read/write mix. The tool itself fails on any lost or duplicated op,
# any deleted-ID hit, any stale ack, or a run with no mid-run compaction,
# and verifies the quiesced engine bit-identical to a from-scratch rebuild
# over the survivors — its JSON is spliced into $serveout as "mutate".
mutatetmp=$(mktemp)
go run ./cmd/drtool -serve-mutate -serve-mutate-out "$mutatetmp"
awk -v mutfile="$mutatetmp" '
{ lines[NR] = $0 }
END {
    # The serve report is an indented JSON object whose last line is the
    # closing brace; splice the mutate object in just before it.
    for (i = 1; i < NR; i++) print lines[i]
    printf "  ,\"mutate\": "
    first = 1
    while ((getline line < mutfile) > 0) {
        if (first) { print line; first = 0 }
        else       { print "  " line }
    }
    close(mutfile)
    print lines[NR]
}
' "$serveout" >"${serveout}.tmp"
mv "${serveout}.tmp" "$serveout"
rm -f "$mutatetmp"
echo "wrote $serveout"
