package repro

import (
	"repro/internal/cluster"
	"repro/internal/dataset/synthetic"
	"repro/internal/fractal"
	"repro/internal/index"
	"repro/internal/index/lsh"
	"repro/internal/knn"
	"repro/internal/reduction"
)

// This file exposes the extension features the paper sketches beyond its
// core evaluation: local (projected-clustering) reduction for data with
// high global implicit dimensionality (§3.1), streaming covariance
// maintenance for dynamic databases (reference [17]), and the economical
// partial-decomposition fitting paths.

// SearchSetBatch is SearchSet routed through the blocked batch-distance
// engine: for Euclidean and SquaredEuclidean metrics, squared distances come
// from cached row norms and tiled matrix products instead of per-pair scans,
// and results match SearchSet exactly (other metrics fall back to
// SearchSetParallel). Use it for ground-truth workloads — exact k-NN of a
// query set against a large stored set.
func SearchSetBatch(data, queries *Matrix, k int, m Metric, selfExclude bool) [][]Neighbor {
	return knn.SearchSetBatch(data, queries, k, m, selfExclude)
}

// PairwiseSq returns the queries.Rows() x data.Rows() matrix of squared
// Euclidean distances, computed through the same blocked kernels. It
// materializes the full matrix; for k-NN prefer SearchSetBatch, which tiles.
func PairwiseSq(data, queries *Matrix) *Matrix {
	return knn.PairwiseSq(data, queries)
}

// KMeansResult is a k-means clustering of a point matrix.
type KMeansResult = cluster.KMeansResult

// KMeansConfig configures KMeans.
type KMeansConfig = cluster.KMeansConfig

// KMeans clusters the rows of x with k-means++ seeding and Lloyd iteration.
func KMeans(x *Matrix, cfg KMeansConfig) (*KMeansResult, error) { return cluster.KMeans(x, cfg) }

// Silhouette returns the mean silhouette coefficient of a clustering.
func Silhouette(x *Matrix, assign []int, k int) float64 { return cluster.Silhouette(x, assign, k) }

// LocalReduction is a per-cluster dimensionality reduction (the paper's
// §3.1 extension): each k-means cell gets its own PCA and keeps its own
// most meaningful directions.
type LocalReduction = cluster.LocalReduction

// LocalConfig configures FitLocal.
type LocalConfig = cluster.LocalConfig

// FitLocal partitions the data and fits a reduction per cluster.
func FitLocal(x *Matrix, cfg LocalConfig) (*LocalReduction, error) { return cluster.FitLocal(x, cfg) }

// SubspaceMixtureConfig describes a union-of-subspaces data set — the
// high-implicit-dimensionality regime where only local reduction works.
type SubspaceMixtureConfig = synthetic.SubspaceMixtureConfig

// SubspaceMixture generates a union-of-subspaces data set.
func SubspaceMixture(c SubspaceMixtureConfig) (*Dataset, error) { return synthetic.SubspaceMixture(c) }

// CovarianceAccumulator maintains streaming covariance statistics so the
// transform of a dynamic database can be refreshed in O(d²) per update.
type CovarianceAccumulator = reduction.CovarianceAccumulator

// NewCovarianceAccumulator creates an accumulator for d-dimensional points.
func NewCovarianceAccumulator(d int) *CovarianceAccumulator {
	return reduction.NewCovarianceAccumulator(d)
}

// FitSVD computes the same transform as Fit via the SVD of the data matrix
// (numerically preferable when eigenvalues span many orders of magnitude or
// when n < d).
func FitSVD(x *Matrix, opts Options) (*PCA, error) { return reduction.FitSVD(x, opts) }

// FitTopK computes only the k leading principal components via Lanczos
// iteration — economical when d is large and only an aggressive reduction
// is wanted.
func FitTopK(x *Matrix, k int, opts Options, seed int64) (*PCA, error) {
	return reduction.FitTopK(x, k, opts, seed)
}

// IGrid is the inverted-grid similarity index of the paper's reference [3]:
// an alternative to dimensionality reduction that redefines similarity so
// that only same-range dimensions contribute, preserving nearest-neighbor
// contrast in high dimensionality.
type IGrid = index.IGrid

// BuildIGrid indexes the rows of data with the given equi-depth ranges per
// dimension and Minkowski aggregation order p (2 is the usual choice).
func BuildIGrid(data *Matrix, ranges int, p float64) *IGrid {
	return index.BuildIGrid(data, ranges, p)
}

// BuildIDistance builds the iDistance one-dimensional-mapping index over a
// B+ tree: exact Euclidean k-NN via partition-banded range scans. It is
// most effective in the aggressively reduced space.
func BuildIDistance(data *Matrix, partitions int, seed int64) Index {
	return index.BuildIDistance(data, partitions, seed)
}

// ApproxIndex is an approximate Euclidean k-NN structure whose queries
// trade recall for work via a probing-depth argument, reporting
// BucketsProbed and CandidateSize in its stats.
type ApproxIndex = index.ApproxIndex

// LSHConfig configures BuildLSH: table count, hashes per table, slot width
// (0 = estimated from the data) and the root seed all tables derive from.
type LSHConfig = lsh.Config

// LSHIndex is a multi-probe locality-sensitive hash index (p-stable random
// projections; Lv et al., VLDB 2007). It implements ApproxIndex; its
// KNNApproxSet answers batch workloads on a GOMAXPROCS-sized worker pool.
type LSHIndex = lsh.Index

// BuildLSH hashes the rows of data into cfg.Tables bucket maps, building
// tables concurrently. Results are deterministic for a fixed cfg.Seed.
func BuildLSH(data *Matrix, cfg LSHConfig) *LSHIndex { return lsh.Build(data, cfg) }

// Recall is the fraction of the exact neighbor set an approximate answer
// recovered — the recall@k of an ApproxIndex judged against an exact
// index's ground truth.
func Recall(approx, exact []Neighbor) float64 { return index.Recall(approx, exact) }

// MeanRecall averages Recall over paired query workloads.
func MeanRecall(approx, exact [][]Neighbor) float64 { return index.MeanRecall(approx, exact) }

// ScanFraction is the fraction of stored vectors a query workload had to
// examine, given the accumulated stats and the per-query point count.
func ScanFraction(s IndexStats, total int) float64 { return index.ScanFraction(s, total) }

// FractalEstimate is a correlation-dimension fit.
type FractalEstimate = fractal.Estimate

// FractalOptions configure CorrelationDimension.
type FractalOptions = fractal.Options

// CorrelationDimension estimates the implicit (intrinsic) dimensionality
// D₂ of a point set (the paper's §3 notion, via reference [15]): low D₂
// relative to the ambient dimensionality marks data amenable to aggressive
// reduction; D₂ near ambient marks the irreducible uniform-like regime.
func CorrelationDimension(x *Matrix, opts FractalOptions) (FractalEstimate, error) {
	return fractal.CorrelationDimension(x, opts)
}
