// Dynamicdb demonstrates dimensionality-reduced similarity search over a
// growing database (the setting of the paper's reference [17]): points
// stream in, a covariance accumulator maintains the sufficient statistics
// in O(d²) per insert, and the reduced-space index is refreshed only when
// the transform has drifted — never by re-reading old points.
package main

import (
	"fmt"
	"math"

	repro "repro"
)

func main() {
	// The full "future" database, revealed in batches.
	stream := repro.MuskLike(1)
	d := stream.Dims()
	fmt.Printf("streaming %d points of %d dims in batches\n", stream.N(), d)

	acc := repro.NewCovarianceAccumulator(d)
	var current *repro.PCA
	var lastRefit []float64 // eigenvalues at the last refit

	const batch = 100
	refits := 0
	for start := 0; start < stream.N(); start += batch {
		end := start + batch
		if end > stream.N() {
			end = stream.N()
		}
		for i := start; i < end; i++ {
			acc.Add(stream.X.RawRow(i))
		}
		if acc.N() < 2*batch {
			continue // warm-up
		}
		// Refresh the transform when the spectrum has drifted by more than
		// 5% since the last refit (or if there is none yet).
		p, err := acc.FitPCA()
		if err != nil {
			panic(err)
		}
		if current == nil || spectrumDrift(lastRefit, p.Eigenvalues) > 0.05 {
			current = p
			lastRefit = append([]float64(nil), p.Eigenvalues...)
			refits++
			fmt.Printf("  after %4d points: refit #%d (top eigenvalue %.1f)\n",
				acc.N(), refits, p.Eigenvalues[0])
		}
	}

	// Final quality check: the streamed transform's reduced space matches
	// a from-scratch batch fit.
	batchPCA, err := repro.FitDataset(stream, repro.Options{})
	if err != nil {
		panic(err)
	}
	k := 13
	streamed := current.ReduceDataset(stream, current.TopK(repro.ByEigenvalue, k), "streamed")
	batchRed := batchPCA.ReduceDataset(stream, batchPCA.TopK(repro.ByEigenvalue, k), "batch")
	fmt.Printf("\n3-NN accuracy in %d-dim reduced space: streamed %.1f%%, batch %.1f%%\n",
		k, 100*repro.DatasetAccuracy(streamed), 100*repro.DatasetAccuracy(batchRed))
	fmt.Printf("transform refits: %d (vs %d batches ingested)\n", refits, (stream.N()+batch-1)/batch)
}

// spectrumDrift returns the relative L1 drift between two eigenvalue
// spectra.
func spectrumDrift(old, cur []float64) float64 {
	if old == nil {
		return math.Inf(1)
	}
	num, den := 0.0, 0.0
	for i := range old {
		num += math.Abs(old[i] - cur[i])
		den += math.Abs(old[i])
	}
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}
