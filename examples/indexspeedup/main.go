// Indexspeedup demonstrates the paper's performance motivation (§1.1): in
// high dimensionality, partition indexes cannot prune — every k-NN query
// degenerates to a full scan — while after aggressive dimensionality
// reduction the same structures prune most of the database. The VA-file,
// designed for high dimensions, is shown as the contrasting baseline.
package main

import (
	"fmt"
	"math/rand"

	repro "repro"
)

func main() {
	// A larger draw from the Arrhythmia-analogue distribution: 6000 points
	// in 279 dimensions.
	cfg := repro.LatentFactorConfig{
		Name: "arrhythmia-6k", N: 6000, Dims: 279, Classes: 8,
		ConceptStrengths: []float64{7, 7, 7, 7, 7, 4, 4, 4, 4, 4},
		ClassSeparation:  1.8, NoiseStdDev: 1.8, ScaleSpread: 1.6, Seed: 1,
	}
	ds, err := repro.Generate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("data:", ds)

	p, err := repro.FitDataset(ds, repro.Options{Scaling: repro.ScalingStudentize})
	if err != nil {
		panic(err)
	}
	full := p.Transform(ds.X, p.TopK(repro.ByEigenvalue, ds.Dims()))
	reduced := p.Transform(ds.X, p.TopK(repro.ByEigenvalue, 10))

	//drlint:ignore globalrand fixed demo seed keeps the example's printed output reproducible
	rng := rand.New(rand.NewSource(2))
	const queries = 20
	for _, rep := range []struct {
		name string
		data *repro.Matrix
	}{
		{"full dimensionality (279 dims)", full},
		{"aggressively reduced (10 dims)", reduced},
	} {
		fmt.Printf("\n%s:\n", rep.name)
		for _, idx := range []struct {
			name  string
			build func(*repro.Matrix) repro.Index
		}{
			{"kd-tree", func(m *repro.Matrix) repro.Index { return repro.BuildKDTree(m, 0) }},
			{"r-tree ", func(m *repro.Matrix) repro.Index { return repro.BuildRTree(m, 0) }},
			{"va-file", func(m *repro.Matrix) repro.Index { return repro.BuildVAFile(m, 6) }},
		} {
			structure := idx.build(rep.data)
			var total repro.IndexStats
			for q := 0; q < queries; q++ {
				query := rep.data.Row(rng.Intn(rep.data.Rows()))
				_, stats := structure.KNN(query, 3)
				total.Add(stats)
			}
			frac := float64(total.PointsScanned) / float64(queries*rep.data.Rows())
			bar := ""
			for n := 0; n < int(50*frac); n++ {
				bar += "#"
			}
			fmt.Printf("  %s scans %5.1f%% of vectors per 3-NN query |%s\n", idx.name, 100*frac, bar)
		}
	}
	fmt.Println("\nreduction turns the partition indexes from useless to effective —")
	fmt.Println("\"greater aggression in dimensionality reduction translates to better performance.\"")
}
