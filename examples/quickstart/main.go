// Quickstart: the full pipeline in one page — generate a labelled
// high-dimensional data set, fit a studentized PCA with coherence analysis,
// pick components by coherence probability, and compare similarity-search
// quality before and after the aggressive reduction.
package main

import (
	"fmt"

	repro "repro"
)

func main() {
	// A 351-point, 34-dimensional data set with ten latent concepts —
	// the library's stand-in for UCI Ionosphere.
	ds := repro.IonosphereLike(1)
	fmt.Println("data:", ds)

	// Fit correlation-matrix PCA (the paper's recommended scaling) and
	// evaluate each eigenvector's coherence probability P(D,e).
	p, err := repro.FitDataset(ds, repro.Options{
		Scaling:          repro.ScalingStudentize,
		ComputeCoherence: true,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("\ntop components (eigenvalue / coherence probability):")
	for i := 0; i < 8; i++ {
		fmt.Printf("  e%-2d  λ=%-7.3f P(D,e)=%.3f\n", i+1, p.Eigenvalues[i], p.Coherence[i])
	}

	// The paper's selection rule: keep the most coherent directions. The
	// scatter-gap heuristic picks how many.
	ordered := p.Order(repro.ByCoherence)
	coh := make([]float64, len(ordered))
	for i, idx := range ordered {
		coh[i] = p.Coherence[idx]
	}
	k := repro.GapCutoff(coh, 2, ds.Dims()/2)
	components := ordered[:k]
	fmt.Printf("\nretaining %d of %d components (%.0f%% of variance)\n",
		k, ds.Dims(), 100*p.EnergyFraction(components))

	reduced := p.ReduceDataset(ds, components, "ionosphere-reduced")

	// Feature-stripped quality: how often do a point's 3 nearest neighbors
	// share its class?
	fullAcc := repro.DatasetAccuracy(ds)
	redAcc := repro.DatasetAccuracy(reduced)
	fmt.Printf("3-NN class-match accuracy: full %.1f%% -> reduced %.1f%%\n",
		100*fullAcc, 100*redAcc)

	// Run one similarity query in the reduced space.
	query := reduced.Point(0)
	neighbors := repro.Search(reduced.X, query, 4, repro.Euclidean{}, 0)
	fmt.Println("\nnearest neighbors of point 0 in the reduced space:")
	for _, nb := range neighbors {
		same := "different class"
		if reduced.Labels[nb.Index] == reduced.Labels[0] {
			same = "same class"
		}
		fmt.Printf("  point %-4d dist=%.3f (%s)\n", nb.Index, nb.Dist, same)
	}
}
