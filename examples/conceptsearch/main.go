// Conceptsearch demonstrates the text-retrieval phenomenon that motivates
// the paper (latent semantic indexing, references [7] and [16]): term-space
// similarity search is defeated by synonymy (documents about one topic use
// disjoint vocabularies) and by high-frequency topic-free terms whose counts
// dominate the distance, while an aggressive reduction onto a few coherent
// concept axes recovers topical search.
//
// The corpus is synthetic: each topic owns many small synonym groups
// ("car, sedan, ..." vs "automobile, vehicle, ...") plus topic-common
// context terms that every group co-occurs with — the statistical bridge
// that lets the eigendecomposition merge the groups into one concept. On
// top sits a small set of stopword-like terms that appear everywhere with
// high frequency: they carry most of the variance (so eigenvalue-ordered
// selection wastes its budget on them) but no meaning (so their coherence
// probability is low).
package main

import (
	"fmt"
	"math/rand"

	repro "repro"
)

const (
	topics        = 4
	groupsPer     = 25 // synonym groups per topic
	termsPerGroup = 6  // vocabulary of each synonym group
	contextTerms  = 12 // topic-common bridge terms per topic
	stopwords     = 15 // high-frequency topic-free terms
	docs          = 500
	tokensPerDoc  = 60
)

func main() {
	ds := buildCorpus(7)
	fmt.Println("corpus:", ds)
	fmt.Printf("vocabulary: %d topical terms in %d synonym groups, %d context terms, %d stopwords\n",
		topics*groupsPer*termsPerGroup, topics*groupsPer, topics*contextTerms, stopwords)

	// Full-dimensional retrieval: cosine similarity on raw term counts —
	// dominated by the stopword counts.
	fullAcc := repro.PredictionAccuracy(ds.X, ds.Labels, repro.PaperK, repro.Cosine{})

	p, err := repro.FitDataset(ds, repro.Options{ComputeCoherence: true})
	if err != nil {
		panic(err)
	}

	fmt.Println("\ntop of the spectrum (eigenvalue / coherence):")
	for i := 0; i < 6; i++ {
		fmt.Printf("  e%-2d λ=%-8.2f P(D,e)=%.3f\n", i+1, p.Eigenvalues[i], p.Coherence[i])
	}

	fmt.Printf("\n3-NN topic-match accuracy (cosine): raw term space (%d dims): %.1f%%\n",
		ds.Dims(), 100*fullAcc)
	dims := []int{2, 4, 8, 16, 32, 64}
	for _, ord := range []struct {
		name string
		o    repro.Ordering
	}{
		{"eigenvalue-ordered", repro.ByEigenvalue},
		{"coherence-ordered ", repro.ByCoherence},
	} {
		curve := repro.Sweep(ds, p, p.Order(ord.o), ord.name, repro.SweepConfig{
			Dims: dims, Metric: repro.Cosine{},
		})
		fmt.Printf("  %s:", ord.name)
		for _, pt := range curve.Points {
			fmt.Printf("  %dd=%.1f%%", pt.Dims, 100*pt.Accuracy)
		}
		opt := curve.Optimal()
		fmt.Printf("   (best %.1f%% at %d dims)\n", 100*opt.Accuracy, opt.Dims)
	}

	// Show one retrieval in the coherent concept space.
	components := p.TopK(repro.ByCoherence, 8)
	reduced := p.ReduceDataset(ds, components, "concept space")
	queryDoc := 0
	fmt.Printf("\nquery: document %d (topic %d)\n", queryDoc, ds.Labels[queryDoc])
	show := func(space string, x *repro.Matrix) {
		nbs := repro.Search(x, x.Row(queryDoc), 3, repro.Cosine{}, queryDoc)
		fmt.Printf("  %s neighbors:", space)
		for _, nb := range nbs {
			fmt.Printf(" doc%d(topic %d)", nb.Index, ds.Labels[nb.Index])
		}
		fmt.Println()
	}
	show("raw-term", ds.X)
	show("concept ", reduced.X)
	fmt.Println("\nthe stopword variance owns the top eigenvalues but has low coherence;")
	fmt.Println("picking by coherence probability recovers the semantic concepts.")
}

// buildCorpus generates the term-document matrix. Document i belongs to
// topic i%topics and uses synonym group (i/topics)%groupsPer of that topic.
// The vocabulary is laid out as: per-topic synonym groups, per-topic context
// terms, then the stopwords.
func buildCorpus(seed int64) *repro.Dataset {
	rng := rand.New(rand.NewSource(seed))
	groupBlock := topics * groupsPer * termsPerGroup
	contextBlock := topics * contextTerms
	vocab := groupBlock + contextBlock + stopwords
	x := repro.NewMatrix(docs, vocab)
	labels := make([]int, docs)
	for i := 0; i < docs; i++ {
		topic := i % topics
		group := (i / topics) % groupsPer
		labels[i] = topic
		base := (topic*groupsPer + group) * termsPerGroup
		for t := 0; t < tokensPerDoc; t++ {
			var term int
			switch r := rng.Float64(); {
			case r < 0.18:
				// A term from this document's own synonym group.
				term = base + rng.Intn(termsPerGroup)
			case r < 0.30:
				// A topic-common context term (the synonymy bridge).
				term = groupBlock + topic*contextTerms + rng.Intn(contextTerms)
			default:
				// A stopword: frequent everywhere, meaningless. A skewed
				// per-document stopword profile makes the counts bursty, as
				// in real text.
				term = groupBlock + contextBlock + int(float64(stopwords)*rng.Float64()*rng.Float64())
			}
			x.Add(i, term, 1)
		}
	}
	ds, err := repro.NewDataset("synthetic corpus", x, labels)
	if err != nil {
		panic(err)
	}
	return ds
}
