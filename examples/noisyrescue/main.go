// Noisyrescue reproduces the paper's §4.1 scenario interactively: a data set
// whose largest-variance directions are pure noise. Classical
// eigenvalue-ordered reduction keeps exactly the wrong directions;
// coherence-probability ordering identifies the buried concepts and rescues
// search quality.
package main

import (
	"fmt"

	repro "repro"
)

func main() {
	// "Noisy data set A": the Ionosphere analogue with 10 of 34 features
	// replaced by uniform noise of amplitude 6 (variance 3 — larger than
	// any signal dimension's).
	ds, corrupted := repro.NoisyDataA(1)
	fmt.Printf("data: %s (corrupted columns: %v)\n", ds, corrupted)

	p, err := repro.FitDataset(ds, repro.Options{ComputeCoherence: true})
	if err != nil {
		panic(err)
	}

	fmt.Println("\nspectrum (descending eigenvalue):")
	for i := 0; i < 14; i++ {
		tag := ""
		if p.Coherence[i] < 0.6 {
			tag = "   <- low coherence: noise"
		}
		fmt.Printf("  e%-2d λ=%-6.2f P(D,e)=%.3f%s\n", i+1, p.Eigenvalues[i], p.Coherence[i], tag)
	}
	fmt.Println("the 10 largest eigenvalues are the injected noise; the concepts hide below them")

	for _, ordering := range []struct {
		name string
		o    repro.Ordering
	}{
		{"eigenvalue ordering (classical)", repro.ByEigenvalue},
		{"coherence ordering (the paper's rule)", repro.ByCoherence},
	} {
		fmt.Printf("\naccuracy vs dims retained — %s\n", ordering.name)
		curve := repro.Sweep(ds, p, p.Order(ordering.o), ordering.name, repro.SweepConfig{
			Dims: []int{2, 5, 10, 15, 20, 34},
		})
		for _, pt := range curve.Points {
			bar := ""
			for n := 0; n < int(60*pt.Accuracy); n++ {
				bar += "#"
			}
			fmt.Printf("  %2d dims %5.1f%% |%s\n", pt.Dims, 100*pt.Accuracy, bar)
		}
		opt := curve.Optimal()
		fmt.Printf("  optimum: %.1f%% at %d dims\n", 100*opt.Accuracy, opt.Dims)
	}

	fmt.Println("\ncoherence ordering dominates at every aggressive dimensionality:")
	fmt.Println("the eigenvalue rule spends its budget on noise; the coherence rule on concepts.")
}
