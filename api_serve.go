package repro

import (
	"context"

	"repro/internal/dataset/synthetic"
	"repro/internal/linalg"
	"repro/internal/serve"
)

// This file exposes the concurrent serving layer: a sharded query engine
// over the exact batch-distance path and the approximate LSH path, with
// admission control, atomic snapshot swaps and a closed-loop load
// generator. `drtool -serve-bench` is the CLI front end.

// Engine is a sharded, concurrent k-NN query engine. Data is partitioned
// into shards, each with its own cached norms and LSH tables; queries fan
// out over a fixed worker pool and per-shard top-k results merge under the
// canonical (distance, index) order, so exact answers are bit-identical to
// SearchSetBatch.
type Engine = serve.Engine

// ServeConfig configures NewEngine (shard count, worker pools, admission
// queue depth, degradation watermark and the per-shard LSH layout).
type ServeConfig = serve.Config

// ServeResult is one answered query: neighbors, the path that served it,
// the snapshot epoch, and queue/total timings.
type ServeResult = serve.Result

// ServeMode selects the search path per request.
type ServeMode = serve.Mode

// Serve modes: ModeAuto lets admission control degrade exact to approximate
// under load; ModeExact and ModeApprox pin the path.
const (
	ModeAuto   = serve.ModeAuto
	ModeExact  = serve.ModeExact
	ModeApprox = serve.ModeApprox
)

// EngineStats is a point-in-time snapshot of an engine's counters,
// including fixed-bucket latency percentiles.
type EngineStats = serve.EngineStats

// Typed serving errors: admission control rejects with ErrOverloaded when
// the request queue is full; ErrDeadline wraps context expiry; ErrClosed
// marks requests after Close; ErrDims marks query/engine dimension
// mismatches.
var (
	ErrOverloaded = serve.ErrOverloaded
	ErrDeadline   = serve.ErrDeadline
	ErrClosed     = serve.ErrClosed
	ErrDims       = serve.ErrDims
)

// NewEngine builds a sharded engine over the rows of data.
func NewEngine(data *Matrix, cfg ServeConfig) (*Engine, error) { return serve.New(data, cfg) }

// ServeSearch answers one exact-or-degraded query through an engine
// (shorthand for SearchMode with ModeAuto).
func ServeSearch(ctx context.Context, e *Engine, query []float64, k int) (ServeResult, error) {
	return e.Search(ctx, query, k)
}

// LoadConfig parameterizes RunLoad: total queries, closed-loop client
// count, optional aggregate QPS throttle, per-request deadline, neighbor
// count and search mode.
type LoadConfig = serve.LoadConfig

// LoadReport is the outcome accounting of one RunLoad; Lost and Duplicated
// must be zero on a correct engine.
type LoadReport = serve.LoadReport

// RunLoad drives an engine with a closed-loop client fleet cycling through
// the query rows and accounts for every request's outcome. Per-request
// deadlines derive from ctx, so cancelling it winds down the fleet.
func RunLoad(ctx context.Context, e *Engine, queries *linalg.Dense, cfg LoadConfig) (LoadReport, error) {
	return serve.RunLoad(ctx, e, queries, cfg)
}

// MuskLikeConfig is the generator configuration behind MuskLike with N left
// adjustable: set N to carve a database-scale workload (the serving
// benchmark uses n = 6598 data rows at d = 166 plus held-out queries).
func MuskLikeConfig(seed int64) LatentFactorConfig { return synthetic.MuskLikeConfig(seed) }
