package repro

import (
	"context"

	"repro/internal/dataset/synthetic"
	"repro/internal/linalg"
	"repro/internal/serve"
)

// This file exposes the concurrent serving layer: a sharded query engine
// over the exact batch-distance path and the approximate LSH path, with
// admission control, atomic snapshot swaps, a live mutation path
// (Engine.Insert/Delete/Compact with delta buffers, tombstones and a
// background compactor) and closed-loop load generators for both pure-read
// and mixed read/write workloads. `drtool -serve-bench` and
// `drtool -serve-mutate` are the CLI front ends.

// Engine is a sharded, concurrent k-NN query engine. Data is partitioned
// into shards, each with its own cached norms and LSH tables; queries fan
// out over a fixed worker pool and per-shard top-k results merge under the
// canonical (distance, index) order, so exact answers are bit-identical to
// SearchSetBatch.
type Engine = serve.Engine

// ServeConfig configures NewEngine (shard count, worker pools, admission
// queue depth, degradation watermark and the per-shard LSH layout).
type ServeConfig = serve.Config

// ServeResult is one answered query: neighbors, the path that served it,
// the snapshot epoch, and queue/total timings.
type ServeResult = serve.Result

// ServeMode selects the search path per request.
type ServeMode = serve.Mode

// Serve modes: ModeAuto lets admission control degrade exact to approximate
// under load; ModeExact and ModeApprox pin the path.
const (
	ModeAuto   = serve.ModeAuto
	ModeExact  = serve.ModeExact
	ModeApprox = serve.ModeApprox
)

// EngineStats is a point-in-time snapshot of an engine's counters,
// including fixed-bucket latency percentiles.
type EngineStats = serve.EngineStats

// Typed serving errors: admission control rejects with ErrOverloaded when
// the request queue is full (or the insert delta backlog is at its cap);
// ErrDeadline wraps context expiry; ErrClosed marks requests after Close;
// ErrDims marks query/engine dimension mismatches; ErrUnknownID marks
// deletes of IDs not in the served set.
var (
	ErrOverloaded = serve.ErrOverloaded
	ErrDeadline   = serve.ErrDeadline
	ErrClosed     = serve.ErrClosed
	ErrDims       = serve.ErrDims
	ErrUnknownID  = serve.ErrUnknownID
)

// NewEngine builds a sharded engine over the rows of data.
func NewEngine(data *Matrix, cfg ServeConfig) (*Engine, error) { return serve.New(data, cfg) }

// ServeSearch answers one exact-or-degraded query through an engine
// (shorthand for SearchMode with ModeAuto).
func ServeSearch(ctx context.Context, e *Engine, query []float64, k int) (ServeResult, error) {
	return e.Search(ctx, query, k)
}

// LoadConfig parameterizes RunLoad: total queries, closed-loop client
// count, optional aggregate QPS throttle, per-request deadline, neighbor
// count and search mode.
type LoadConfig = serve.LoadConfig

// LoadReport is the outcome accounting of one RunLoad; Lost and Duplicated
// must be zero on a correct engine.
type LoadReport = serve.LoadReport

// RunLoad drives an engine with a closed-loop client fleet cycling through
// the query rows and accounts for every request's outcome. Per-request
// deadlines derive from ctx, so cancelling it winds down the fleet.
func RunLoad(ctx context.Context, e *Engine, queries *linalg.Dense, cfg LoadConfig) (LoadReport, error) {
	return serve.RunLoad(ctx, e, queries, cfg)
}

// DriftConfig enables streaming-PCA drift tracking of an engine's mutation
// stream (ServeConfig.Drift): when the frozen basis's captured energy
// decays below the threshold, the engine forces a re-projection compaction
// and refits the basis.
type DriftConfig = serve.DriftConfig

// MutateConfig parameterizes RunMutateLoad: total operations, closed-loop
// client count, write fraction, neighbor count, per-op deadline, read mode
// and the RNG seed behind the op mix.
type MutateConfig = serve.MutateConfig

// MutateReport is the outcome accounting of one RunMutateLoad. Lost,
// Duplicated, DeletedIDHits and StaleAcks must all be zero on a correct
// engine.
type MutateReport = serve.MutateReport

// LiveSet is the ground-truth surviving state after a mutation run: stable
// IDs (ascending) and their vectors, row-aligned.
type LiveSet = serve.LiveSet

// RunMutateLoad drives an engine with a mixed read/write workload — k-NN
// reads interleaved with inserts and deletes — checking read-your-writes
// visibility and deleted-ID invisibility inline, and returns the surviving
// ground truth for VerifyMutated.
func RunMutateLoad(ctx context.Context, e *Engine, base, queries *linalg.Dense, cfg MutateConfig) (MutateReport, LiveSet, error) {
	return serve.RunMutateLoad(ctx, e, base, queries, cfg)
}

// VerifyMutated holds a quiesced engine to the bit-identity contract
// against the post-mutation ground truth: exact top-k must equal a
// from-scratch rebuild over the surviving rows, bit for bit.
func VerifyMutated(ctx context.Context, e *Engine, live LiveSet, queries *linalg.Dense, k, sample int) error {
	return serve.VerifyMutated(ctx, e, live, queries, k, sample)
}

// MuskLikeConfig is the generator configuration behind MuskLike with N left
// adjustable: set N to carve a database-scale workload (the serving
// benchmark uses n = 6598 data rows at d = 166 plus held-out queries).
func MuskLikeConfig(seed int64) LatentFactorConfig { return synthetic.MuskLikeConfig(seed) }
